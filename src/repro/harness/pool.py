"""Parallel sweep executor: a work-stealing process pool over grid points.

PR 5 made a single simulated run fast on one core; this module makes
*sweeps* fast on all of them. A sweep (or figure) is enumerated into
self-describing point specs — ``fn(seed=..., **params)`` with a grid
index — and :func:`map_points` dispatches them:

* **Work-stealing dispatch.** Worker processes pull point indices from
  one shared queue, so skewed point costs (a 32-node WW point next to a
  1-node PP point) never serialize the tail behind a static partition.
* **Deterministic merge.** Results (metric values *and* per-run
  observability snapshots) are shipped back and merged strictly by grid
  index, so the aggregated :class:`~repro.harness.sweep.SweepResult`
  and the ``repro.run-metrics`` artifact are identical to a serial run
  (see :func:`repro.harness.artifact.canonical_metrics_bytes` for the
  precise notion: everything except the volatile provenance fields —
  worker ids and wall-clock — is byte-for-byte equal).
* **Content-addressed caching.** With a cache directory configured,
  every completed point is persisted under its
  :func:`~repro.harness.cache.point_key`; re-runs of identical points
  are free, and an interrupted sweep resumes from the finished points.
* **Seed hygiene.** Every executor (the serial path and each worker
  process) scrambles the ambient global RNGs (``random``,
  ``numpy.random``) before running points, with a *different* token per
  worker. A point function that leaks dependence on ambient global
  state therefore diverges between ``--parallel 1`` and ``--parallel
  8`` and trips the byte-identity tests — results must derive only
  from the point spec's seed.

Processes are forked lazily per :func:`map_points` call, so ambient
sessions (:class:`~repro.faults.FaultSession`,
:class:`~repro.flow.FlowSession`, :class:`~repro.obs.ObsSession`)
entered by the caller are inherited by the workers; fork is also what
lets arbitrary in-process callables (closures, partials) run in workers
without pickling. On platforms without ``fork`` the executor degrades
to the serial path.
"""

from __future__ import annotations

import multiprocessing
import random
import time
import traceback
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from repro.errors import HarnessError
from repro.harness.cache import ResultCache, point_key

#: Scramble bases for the ambient-RNG guard (arbitrary, fixed).
_GUARD_SEED = 0x5EED_CA5E


class SweepInterrupted(HarnessError):
    """A sweep stopped early after exhausting its point budget.

    Completed points were already persisted to the cache, so re-invoking
    the same sweep with the same cache directory resumes where it
    stopped (``repro sweep --resume``).
    """

    def __init__(self, executed: int, remaining: int) -> None:
        super().__init__(
            f"sweep interrupted after {executed} executed point(s); "
            f"{remaining} point(s) remain — re-run with the same cache "
            f"directory to resume"
        )
        self.executed = executed
        self.remaining = remaining


@dataclass(frozen=True)
class PointSpec:
    """One self-describing grid point of a sweep."""

    index: int
    params: Mapping[str, Any]
    seed: int
    #: Content-address of the point (None when caching is off).
    key: Optional[str] = None


@dataclass
class PointOutcome:
    """The merged result of one point, in grid-index order."""

    spec: PointSpec
    value: Any
    #: Per-run observability snapshots produced by this point.
    records: List[dict] = field(default_factory=list)
    cache_hit: bool = False
    #: Executor id: 0 = the parent (serial path), 1..N = pool workers.
    worker: int = 0
    wall_s: float = 0.0


@dataclass
class PoolConfig:
    """How a pool session executes points."""

    #: Number of worker processes; <=1 runs points in-process.
    parallel: int = 1
    #: Cache directory; ``None`` disables persistence entirely.
    cache_dir: Optional[Path] = None
    #: Read previously cached points (turned off by ``--fresh``).
    cache_read: bool = True
    #: Persist newly executed points.
    cache_write: bool = True
    #: Execute at most this many points (cache hits are free), then
    #: raise :class:`SweepInterrupted` — the resumability test hook.
    max_executions: Optional[int] = None
    #: Render a throttled fleet-status line to stderr while running.
    status: bool = False
    #: Rewrite this JSON file (atomically) with live fleet status —
    #: queue depth, hit rate, per-worker throughput, ETA.
    status_json: Optional[Path] = None
    #: Minimum wall-clock seconds between status updates.
    status_interval_s: float = 0.5


class PoolContext:
    """Ambient state for one sweep/figure invocation."""

    def __init__(self, config: PoolConfig) -> None:
        self.config = config
        self.cache: Optional[ResultCache] = (
            ResultCache(config.cache_dir) if config.cache_dir is not None else None
        )
        #: Per-point provenance dicts, in completion-merge order.
        self.provenance: List[dict] = []
        self.executed = 0
        self.cache_hits = 0

    # ------------------------------------------------------------------
    def budget_remaining(self) -> Optional[int]:
        if self.config.max_executions is None:
            return None
        return max(0, self.config.max_executions - self.executed)

    def record(self, tag: str, outcome: PointOutcome) -> None:
        self.provenance.append(
            {
                "index": outcome.spec.index,
                "tag": tag,
                "params": dict(outcome.spec.params),
                "seed": outcome.spec.seed,
                "key": outcome.spec.key,
                "cache_hit": outcome.cache_hit,
                "worker": outcome.worker,
                "wall_s": outcome.wall_s,
            }
        )
        if outcome.cache_hit:
            self.cache_hits += 1
        else:
            self.executed += 1

    def provenance_payload(self) -> Optional[dict]:
        """The artifact's provenance block (None when nothing ran)."""
        if not self.provenance:
            return None
        from repro.harness.metrics import pool_summary

        return {
            "parallel": self.config.parallel,
            "cache_dir": (
                str(self.config.cache_dir)
                if self.config.cache_dir is not None
                else None
            ),
            "points": list(self.provenance),
            "summary": pool_summary(self.provenance),
        }


_active: Optional[PoolContext] = None


@contextmanager
def pool_session(config: Optional[PoolConfig] = None):
    """Install a :class:`PoolContext` as the ambient executor.

    Sessions nest; the innermost wins, mirroring the obs/fault/flow
    session idiom.
    """
    global _active
    ctx = PoolContext(config if config is not None else PoolConfig())
    prev = _active
    _active = ctx
    try:
        yield ctx
    finally:
        _active = prev


def active_pool() -> Optional[PoolContext]:
    """The innermost active pool context, if any."""
    return _active


# ----------------------------------------------------------------------
# Point execution
# ----------------------------------------------------------------------
def _scramble_ambient_rng(token: int) -> None:
    """Deterministically perturb the global RNGs, per executor.

    Point results must be functions of the point spec alone. Serial and
    parallel executors scramble to *different* states, so any point
    function secretly reading ambient global randomness produces
    diverging sweeps and fails the parallel-vs-serial identity tests
    instead of silently passing.
    """
    random.seed(_GUARD_SEED ^ token)
    try:
        import numpy as np

        np.random.seed((_GUARD_SEED ^ token) % (2**32))
    except ImportError:  # pragma: no cover
        pass


def _fn_tag(fn: Callable[..., Any]) -> Optional[str]:
    """A stable cache tag for ``fn``, or None when there isn't one."""
    module = getattr(fn, "__module__", None)
    qualname = getattr(fn, "__qualname__", None)
    if not module or not qualname:
        return None
    if "<lambda>" in qualname or "<locals>" in qualname:
        return None
    return f"{module}.{qualname}"


def _execute_point(
    fn: Callable[..., Any], spec: PointSpec, collect_obs: bool
):
    """Run one point, capturing its obs records and wall time.

    Inside an active :class:`~repro.obs.ObsSession` the point's runs
    report there naturally and the new tail of ``records`` is the
    capture; otherwise (when records are still needed, e.g. to populate
    a cache entry) the point runs under its own private session.
    """
    from repro.obs import ObsConfig, ObsSession, active_session

    session = active_session()
    own: Optional[ObsSession] = None
    if collect_obs and session is None:
        own = ObsSession(ObsConfig())
        own.__enter__()
        session = own
    try:
        before = len(session.records) if session is not None else 0
        t0 = time.perf_counter()
        value = fn(seed=spec.seed, **spec.params)
        wall = time.perf_counter() - t0
        records = session.records[before:] if session is not None else []
    finally:
        if own is not None:
            own.__exit__(None, None, None)
    return value, records, wall


def _worker_main(worker_id, fn, specs, collect_obs, taskq, resq, heartbeats):
    """Pull indices off the shared queue until sentinel.

    Messages on ``resq`` are tagged tuples: ``("done", slot, worker_id,
    value, records, wall, err)`` for completed points, and — when
    ``heartbeats`` is set — ``("hb", worker_id, info)`` announcing the
    point a worker is starting, which is what drives the parent's live
    fleet-status display.
    """
    _scramble_ambient_rng(worker_id)
    points_done = 0
    while True:
        slot = taskq.get()
        if slot is None:
            return
        spec = specs[slot]
        if heartbeats:
            resq.put((
                "hb",
                worker_id,
                {"slot": slot, "params": dict(spec.params),
                 "points_done": points_done},
            ))
        try:
            value, records, wall = _execute_point(fn, spec, collect_obs)
            points_done += 1
            resq.put(("done", slot, worker_id, value, records, wall, None))
        except BaseException:
            resq.put(
                ("done", slot, worker_id, None, [], 0.0,
                 traceback.format_exc())
            )


def _run_parallel(
    fn: Callable[..., Any],
    specs: Sequence[PointSpec],
    todo: Sequence[int],
    nworkers: int,
    collect_obs: bool,
    on_done: Callable[[int, PointOutcome], None],
    fleet: Optional[Any] = None,
) -> None:
    """Execute ``specs[i] for i in todo`` across ``nworkers`` processes."""
    ctx = multiprocessing.get_context("fork")
    taskq = ctx.SimpleQueue()
    resq = ctx.SimpleQueue()
    for slot in todo:
        taskq.put(slot)
    for _ in range(nworkers):
        taskq.put(None)
    workers = [
        ctx.Process(
            target=_worker_main,
            args=(wid + 1, fn, specs, collect_obs, taskq, resq,
                  fleet is not None),
            daemon=True,
        )
        for wid in range(nworkers)
    ]
    for proc in workers:
        proc.start()
    failure: Optional[str] = None
    try:
        completed = 0
        while completed < len(todo):
            msg = resq.get()
            if msg[0] == "hb":
                if fleet is not None:
                    fleet.on_heartbeat(msg[1], msg[2])
                continue
            _, slot, worker_id, value, records, wall, err = msg
            completed += 1
            if err is not None:
                if failure is None:
                    failure = err
                continue
            if fleet is not None:
                fleet.on_point_done(worker_id, wall)
            on_done(
                slot,
                PointOutcome(
                    spec=specs[slot],
                    value=value,
                    records=records,
                    worker=worker_id,
                    wall_s=wall,
                ),
            )
        for proc in workers:
            proc.join()
    finally:
        for proc in workers:
            if proc.is_alive():  # pragma: no cover - error paths
                proc.terminate()
                proc.join()
    if failure is not None:
        raise HarnessError(f"sweep point failed in worker:\n{failure}")


def _fork_available() -> bool:
    try:
        return "fork" in multiprocessing.get_all_start_methods()
    except Exception:  # pragma: no cover
        return False


# ----------------------------------------------------------------------
# The executor front door
# ----------------------------------------------------------------------
def map_points(
    fn: Callable[..., Any],
    grid: Sequence[Mapping[str, Any]],
    *,
    tag: Optional[str] = None,
    seeds: Sequence[int] = (0,),
    pool: Optional[PoolContext] = None,
) -> List[PointOutcome]:
    """Evaluate ``fn(seed=s, **params)`` for every (params, seed) point.

    Points are enumerated in grid-major order (all seeds of a cell are
    adjacent) and the returned outcomes are in that exact order no
    matter how execution was scheduled. Uses the ambient pool context
    (serial, cache off) when none is active or passed.

    When the context carries a cache, hits are replayed (value + obs
    records) without executing, and completed points are persisted as
    they finish — which is what makes interrupted sweeps resumable.
    """
    ctx = pool if pool is not None else active_pool()
    if ctx is None:
        ctx = PoolContext(PoolConfig())
    cache = ctx.cache
    resolved_tag = tag or _fn_tag(fn)
    if cache is not None and resolved_tag is None:
        raise HarnessError(
            "result caching needs a stable point tag: pass tag=... when "
            "the metric fn is a lambda, a closure or a partial"
        )
    if resolved_tag is None:
        resolved_tag = repr(fn)

    # Observability records are captured per point whenever the caller
    # is collecting them (active ObsSession) or the cache needs them to
    # make entries replayable.
    from repro.obs import active_session

    parent_session = active_session()
    collect_obs = parent_session is not None or cache is not None

    faults_plan = flow_cfg = obs_cfg = None
    if cache is not None:
        from repro.faults.context import active_fault_plan
        from repro.flow.context import active_flow_config

        faults_plan = active_fault_plan()
        flow_cfg = active_flow_config()
        # Timeline-bearing records are shaped differently from plain
        # ones, so the flight-recorder config is part of the point's
        # content address (only when on — plain caches stay valid).
        if parent_session is not None:
            tl = parent_session.config.timeline
            if tl is not None and tl.enabled:
                obs_cfg = tl

    specs: List[PointSpec] = []
    for params in grid:
        for seed in seeds:
            key = None
            if cache is not None:
                key = point_key(
                    tag=resolved_tag,
                    params=params,
                    seed=seed,
                    costs=params.get("costs"),
                    faults=faults_plan,
                    flow=flow_cfg,
                    obs=obs_cfg,
                )
            specs.append(
                PointSpec(
                    index=len(specs), params=dict(params), seed=seed, key=key
                )
            )

    outcomes: List[Optional[PointOutcome]] = [None] * len(specs)

    # Resolve cache hits up front; only misses are dispatched.
    todo: List[int] = []
    for spec in specs:
        entry = None
        if cache is not None and ctx.config.cache_read and spec.key:
            entry = cache.get(spec.key)
        if entry is not None:
            outcomes[spec.index] = PointOutcome(
                spec=spec,
                value=entry.get("value"),
                records=list(entry.get("records") or ()),
                cache_hit=True,
            )
        else:
            todo.append(spec.index)

    budget = ctx.budget_remaining()
    deferred = 0
    if budget is not None and len(todo) > budget:
        deferred = len(todo) - budget
        todo = todo[:budget]

    def finish(slot: int, outcome: PointOutcome) -> None:
        if cache is not None and ctx.config.cache_write and outcome.spec.key:
            cache.put(
                outcome.spec.key,
                {
                    "tag": resolved_tag,
                    "params": dict(outcome.spec.params),
                    "seed": outcome.spec.seed,
                    "value": outcome.value,
                    "records": outcome.records,
                    "meta": {"wall_s": outcome.wall_s, "worker": outcome.worker},
                },
            )
        outcomes[slot] = outcome

    # Execute and merge. Observability snapshots must land in the
    # parent session in strict grid-index order regardless of schedule
    # and cache state, so artifacts never depend on either.
    nworkers = min(max(1, ctx.config.parallel), max(1, len(todo)))
    from repro.harness.fleet import make_fleet_status

    hits_upfront = len(specs) - len(todo) - deferred
    fleet = make_fleet_status(ctx.config, len(specs), hits_upfront, nworkers)
    try:
        if todo and nworkers > 1 and _fork_available():
            # Parallel: workers report nothing to the parent session
            # during execution; absorb every point's records
            # afterwards, in order.
            _run_parallel(
                fn, specs, todo, nworkers, collect_obs, finish, fleet
            )
            if parent_session is not None:
                for outcome in outcomes:
                    if outcome is not None:
                        parent_session.absorb(outcome.records)
        else:
            # Serial: walk specs in index order, interleaving cache-hit
            # replays (absorbed) with in-process executions (which
            # report into the parent session naturally as they run).
            todo_set = set(todo)
            if todo_set:
                _scramble_ambient_rng(0)
            for spec in specs:
                outcome = outcomes[spec.index]
                if outcome is not None:
                    if parent_session is not None:
                        parent_session.absorb(outcome.records)
                elif spec.index in todo_set:
                    if fleet is not None:
                        fleet.on_heartbeat(0, {"params": dict(spec.params)})
                    value, records, wall = _execute_point(
                        fn, spec, collect_obs
                    )
                    if fleet is not None:
                        fleet.on_point_done(0, wall)
                    finish(
                        spec.index,
                        PointOutcome(
                            spec=spec, value=value, records=records,
                            wall_s=wall,
                        ),
                    )
    finally:
        if fleet is not None:
            fleet.finish()

    done: List[PointOutcome] = []
    for outcome in outcomes:
        if outcome is None:
            continue
        ctx.record(resolved_tag, outcome)
        done.append(outcome)

    if deferred:
        raise SweepInterrupted(executed=ctx.executed, remaining=deferred)
    return done


# ----------------------------------------------------------------------
# App-backed sweep points (the `repro sweep` CLI's metric functions)
# ----------------------------------------------------------------------
#: Benchmark apps the generic sweep CLI can drive. Values: (runner
#: import path, takes a scheme argument).
SWEEP_APPS = {
    "histogram": ("repro.apps", "run_histogram", True),
    "indexgather": ("repro.apps", "run_indexgather", True),
    "alltoall": ("repro.apps", "run_alltoall", True),
    "phold": ("repro.apps", "run_phold", True),
    "pingack": ("repro.apps", "run_pingack", False),
}


def run_app_point(app: str, metric: str, seed: int = 0, **params: Any) -> float:
    """One CLI sweep point: run ``app`` and read ``metric`` off its result.

    Machine axes ``nodes``/``ppn``/``wpp`` (defaults 2/2/4, the
    harness's scaled Delta node) and a ``scheme`` axis are recognized;
    every other parameter is passed to the app runner unchanged.
    """
    import importlib

    try:
        mod_name, fn_name, takes_scheme = SWEEP_APPS[app]
    except KeyError:
        raise HarnessError(
            f"unknown sweep app {app!r}; known: {', '.join(sorted(SWEEP_APPS))}"
        ) from None
    runner = getattr(importlib.import_module(mod_name), fn_name)

    from repro.machine import MachineConfig

    kwargs = dict(params)
    machine = MachineConfig(
        nodes=int(kwargs.pop("nodes", 2)),
        processes_per_node=int(kwargs.pop("ppn", 2)),
        workers_per_process=int(kwargs.pop("wpp", 4)),
    )
    scheme = kwargs.pop("scheme", "WPs")
    args = (machine, scheme) if takes_scheme else (machine,)
    result = runner(*args, seed=seed, **kwargs)
    try:
        value = getattr(result, metric)
    except AttributeError:
        raise HarnessError(
            f"app {app!r} result has no metric {metric!r}"
        ) from None
    return float(value)
