"""Message-count bounds (paper §III-C "Number of messages sent").

For ``z`` items sent by each source (worker or, for PP, process) with
buffer depth ``g`` and no intermediate flushing except one at the end:

* lower bound ``z / g`` (every message full),
* upper bound ``z / g + D`` where ``D`` is the number of destinations a
  final flush may leave partially filled: ``N*t`` for WW, ``N`` for
  WPs/WsP (per source worker), and ``N`` for PP (per source *process*).

For streaming workloads (``z >> g``) the flush term vanishes and all
schemes converge; for short phases the destination-process schemes win
— the quantitative heart of Figs 9 and 11.
"""

from __future__ import annotations

import math
from typing import Tuple

from repro.errors import ConfigError
from repro.machine.topology import MachineConfig


def message_bounds_per_source(
    scheme: str, z: int, g: int, machine: MachineConfig
) -> Tuple[float, float]:
    """(lower, upper) messages per source worker (per process for PP)."""
    s = scheme.lower()
    n = machine.total_processes
    t = machine.workers_per_process
    base = z / g
    if s == "ww":
        return base, base + n * t
    if s in ("wps", "wsp"):
        return base, base + n
    if s == "pp":
        return base, base + n
    if s == "direct":
        return float(z), float(z)
    raise ConfigError(f"no message-count model for scheme {scheme!r}")


def message_bounds_total(
    scheme: str, z_remote_total: int, g: int, machine: MachineConfig
) -> Tuple[float, float]:
    """(lower, upper) machine-wide message count.

    Parameters
    ----------
    z_remote_total:
        Total items that actually enter buffers (i.e. excluding items
        bypassed through intra-process shared memory).
    """
    s = scheme.lower()
    n = machine.total_processes
    t = machine.workers_per_process
    if s == "direct":
        return float(z_remote_total), float(z_remote_total)
    lower = math.ceil(z_remote_total / g)
    if s == "ww":
        flush_slots = machine.total_workers * (n * t - t)  # no self-process dests
    elif s in ("wps", "wsp"):
        flush_slots = machine.total_workers * (n - 1)
    elif s == "pp":
        flush_slots = n * (n - 1)
    else:
        raise ConfigError(f"no message-count model for scheme {scheme!r}")
    return float(lower), z_remote_total / g + flush_slots
