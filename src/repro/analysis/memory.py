"""Memory overhead of the aggregation schemes (paper §III-C).

With ``g`` items per buffer, ``m`` bytes per item, ``N`` total processes
and ``t`` workers per process, the paper gives:

=======  =======================  ==========================
scheme   per core                 per process
=======  =======================  ==========================
WW       ``g*m*N*t``              ``g*m*N*t^2``
WPs/WsP  ``g*m*N``                ``g*m*N*t``
PP       ``g*m*N/t`` (amortized)  ``g*m*N``
=======  =======================  ==========================

These are *maximum* allocations (a buffer for every possible
destination); the library allocates lazily, so measured
:attr:`~repro.tram.stats.TramStats.buffer_bytes_allocated` is bounded
above by :func:`total_buffer_bytes` — a property the test suite checks.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.machine.topology import MachineConfig

_WORKER_SCHEMES = {"ww"}
_PROC_BUFFER_SCHEMES = {"wps", "wsp"}
_SHARED_SCHEMES = {"pp"}


def _norm(scheme: str) -> str:
    s = scheme.lower()
    if s not in _WORKER_SCHEMES | _PROC_BUFFER_SCHEMES | _SHARED_SCHEMES:
        raise ConfigError(f"no memory model for scheme {scheme!r}")
    return s


def buffer_bytes_per_core(scheme: str, g: int, m: int, n_processes: int, t: int) -> float:
    """Maximum buffer bytes attributable to one worker core."""
    s = _norm(scheme)
    if s in _WORKER_SCHEMES:
        return g * m * n_processes * t
    if s in _PROC_BUFFER_SCHEMES:
        return g * m * n_processes
    return g * m * n_processes / t  # PP: shared across t workers


def buffer_bytes_per_process(
    scheme: str, g: int, m: int, n_processes: int, t: int
) -> float:
    """Maximum buffer bytes allocated within one process."""
    s = _norm(scheme)
    if s in _WORKER_SCHEMES:
        return g * m * n_processes * t * t
    if s in _PROC_BUFFER_SCHEMES:
        return g * m * n_processes * t
    return g * m * n_processes


def total_buffer_bytes(scheme: str, machine: MachineConfig, g: int, m: int) -> float:
    """Machine-wide maximum buffer allocation for a scheme."""
    return buffer_bytes_per_process(
        scheme, g, m, machine.total_processes, machine.workers_per_process
    ) * machine.total_processes
