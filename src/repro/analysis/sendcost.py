"""Alpha–beta send-cost model (paper §III-C "Message send cost").

Sending ``z`` items of ``b`` bytes individually costs
``z * (alpha + beta*b)``; coalesced into buffers of ``g`` items it costs
``(z/g) * alpha + beta*b*z`` — aggregation divides the alpha component
by ``g`` while the byte component is irreducible. These closed forms
motivate the whole library and are checked against the simulated Direct
vs aggregated runs in the test suite.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.machine.costs import CostModel


def direct_send_cost_ns(
    z: int, item_bytes: int, costs: CostModel | None = None
) -> float:
    """Cost of sending ``z`` items as individual messages."""
    if z < 0:
        raise ConfigError(f"z must be >= 0, got {z}")
    costs = costs or CostModel()
    alpha = costs.alpha_inter_ns
    beta = costs.beta_ns_per_byte
    per_msg_bytes = costs.message_bytes(1, item_bytes)
    return z * (alpha + beta * per_msg_bytes)


def aggregated_send_cost_ns(
    z: int, g: int, item_bytes: int, costs: CostModel | None = None
) -> float:
    """Cost of sending ``z`` items coalesced into ``g``-item buffers."""
    if g < 1:
        raise ConfigError(f"g must be >= 1, got {g}")
    costs = costs or CostModel()
    alpha = costs.alpha_inter_ns
    beta = costs.beta_ns_per_byte
    return (z / g) * alpha + beta * item_bytes * z


def aggregation_speedup(
    z: int, g: int, item_bytes: int, costs: CostModel | None = None
) -> float:
    """Model speedup of aggregated over direct sends (>= 1 for small b)."""
    direct = direct_send_cost_ns(z, item_bytes, costs)
    agg = aggregated_send_cost_ns(z, g, item_bytes, costs)
    return direct / agg if agg > 0 else float("inf")
