"""Closed-form cost analysis from the paper's §III-C.

Four analyses, each cross-checked against the simulator by the test
suite (``tests/analysis``, ``tests/properties``):

* :mod:`~repro.analysis.memory` — buffer memory overhead per scheme;
* :mod:`~repro.analysis.msgcount` — message-count lower/upper bounds;
* :mod:`~repro.analysis.sendcost` — alpha–beta send cost with and
  without aggregation;
* :mod:`~repro.analysis.latency` — buffer-fill latency model (why PP's
  shared buffers cut item latency by the worker count ``t``).
"""

from repro.analysis.latency import expected_fill_latency_ns, fill_rate_per_buffer
from repro.analysis.memory import (
    buffer_bytes_per_core,
    buffer_bytes_per_process,
    total_buffer_bytes,
)
from repro.analysis.msgcount import (
    message_bounds_per_source,
    message_bounds_total,
)
from repro.analysis.sendcost import (
    aggregated_send_cost_ns,
    aggregation_speedup,
    direct_send_cost_ns,
)

__all__ = [
    "aggregated_send_cost_ns",
    "aggregation_speedup",
    "buffer_bytes_per_core",
    "buffer_bytes_per_process",
    "direct_send_cost_ns",
    "expected_fill_latency_ns",
    "fill_rate_per_buffer",
    "message_bounds_per_source",
    "message_bounds_total",
    "total_buffer_bytes",
]
