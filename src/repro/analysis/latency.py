"""Buffer-fill latency model (paper §III-C "Message send cost", latency
discussion).

An item entering a buffer waits until the buffer fills (or is flushed).
With fill rate ``r`` items/ns, a ``g``-item buffer adds up to ``g/r``
latency; on average an item waits for the remaining ``(g-1)/2`` arrivals.

The scheme determines the fill rate seen by one buffer when every
worker produces ``R`` items/ns spread uniformly over all destinations:

* WW — each buffer receives ``R / (N*t)``: slowest fill, highest latency;
* WPs / WsP — ``R / N``: ``t`` times faster than WW;
* PP — ``t * R / N``: all ``t`` workers of the process feed the shared
  buffer, another factor ``t`` — the mechanism behind Fig 12's
  ``PP < WPs < WW`` latency ordering.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.machine.topology import MachineConfig


def fill_rate_per_buffer(
    scheme: str, rate_per_worker: float, machine: MachineConfig
) -> float:
    """Items/ns arriving at one buffer of the given scheme."""
    if rate_per_worker < 0:
        raise ConfigError("rate_per_worker must be >= 0")
    s = scheme.lower()
    n = machine.total_processes
    t = machine.workers_per_process
    if s == "ww":
        return rate_per_worker / (n * t)
    if s in ("wps", "wsp"):
        return rate_per_worker / n
    if s == "pp":
        return t * rate_per_worker / n
    if s == "direct":
        return float("inf")  # never buffered
    raise ConfigError(f"no latency model for scheme {scheme!r}")


def expected_fill_latency_ns(
    scheme: str, g: int, rate_per_worker: float, machine: MachineConfig
) -> float:
    """Mean buffering delay of an item under uniform traffic.

    The average item waits for half the remaining fills:
    ``(g - 1) / (2 * r)``.
    """
    if g < 1:
        raise ConfigError(f"g must be >= 1, got {g}")
    r = fill_rate_per_buffer(scheme, rate_per_worker, machine)
    if r == float("inf"):
        return 0.0
    if r <= 0:
        return float("inf")
    return (g - 1) / (2.0 * r)
