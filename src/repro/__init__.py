"""repro — reproduction of *Shared Memory-Aware Latency-Sensitive Message
Aggregation for Fine-Grained Communication* (SC 2024).

The package provides:

* :mod:`repro.sim` — deterministic discrete-event engine (the substrate
  substituting for the paper's Delta supercomputer; see DESIGN.md §2);
* :mod:`repro.machine` — cluster topology and nanosecond cost model;
* :mod:`repro.network` — alpha–beta wire model with per-node NICs;
* :mod:`repro.runtime` — Charm++-like SMP runtime (worker PEs, comm
  threads, transport, chares);
* :mod:`repro.tram` — **TramLib**, the paper's contribution: the WW,
  WPs, WsP and PP aggregation schemes plus flush policies and stats;
* :mod:`repro.obs` — stage-attributed latency spans, the metrics
  registry and per-run snapshots behind ``--metrics-out``;
* :mod:`repro.faults` — seeded fault injection (message drop / dup /
  corrupt / reorder, NIC degradation, comm-thread stalls) paired with
  the runtime's ack/retransmit reliable-delivery layer;
* :mod:`repro.flow` — credit-based flow control: bounded comm-thread /
  NIC occupancy, backpressure into TramLib source buffers, overload
  escalation and (opt-in) per-destination load shedding;
* :mod:`repro.analysis` — the paper's §III-C closed-form cost analysis;
* :mod:`repro.apps` — PingAck, histogram, index-gather, SSSP and PHOLD;
* :mod:`repro.harness` — per-figure experiment harness and CLI.

Quickstart
----------
>>> from repro import RuntimeSystem, delta_machine
>>> rt = RuntimeSystem(delta_machine(nodes=2, processes_per_node=2,
...                                  workers_per_process=2))
>>> rt.machine.total_workers
8
"""

from repro.errors import (
    ConfigError,
    DeliveryError,
    FaultInjectionError,
    FlowControlError,
    HarnessError,
    QuiescenceError,
    ReproError,
    RetryExhaustedError,
    SchedulingError,
    SimulationError,
)
from repro.faults import FaultPlan, FaultSession, FaultWindow
from repro.flow import FlowConfig, FlowSession
from repro.machine import (
    CostModel,
    MachineConfig,
    delta_costs,
    delta_machine,
    nonsmp_machine,
    small_test_machine,
)
from repro.obs import ObsConfig, ObsSession
from repro.runtime import (
    Chare,
    ExecContext,
    QDCounter,
    ReliabilityConfig,
    RuntimeSystem,
)
from repro.sim import MS, NS, SEC, US, Engine, RngStreams, Tracer, fmt_time

__version__ = "1.0.0"

__all__ = [
    "Chare",
    "ConfigError",
    "CostModel",
    "DeliveryError",
    "Engine",
    "ExecContext",
    "FaultInjectionError",
    "FaultPlan",
    "FaultSession",
    "FaultWindow",
    "FlowConfig",
    "FlowControlError",
    "FlowSession",
    "HarnessError",
    "MS",
    "MachineConfig",
    "NS",
    "ObsConfig",
    "ObsSession",
    "QDCounter",
    "QuiescenceError",
    "ReliabilityConfig",
    "ReproError",
    "RetryExhaustedError",
    "RngStreams",
    "RuntimeSystem",
    "SEC",
    "SchedulingError",
    "SimulationError",
    "Tracer",
    "US",
    "__version__",
    "delta_costs",
    "delta_machine",
    "fmt_time",
    "nonsmp_machine",
    "small_test_machine",
]
