"""Speculative single-source shortest paths (paper §III-D, Figs 14–17).

Vertices are distributed cyclically across chares, one chare per PE.
Execution is speculative: a PE that receives a smaller tentative
distance for a vertex accepts it and (eventually) relaxes the vertex's
out-edges, sending updates through TramLib. Updates that do not improve
a distance are **wasted updates** — the paper's latency-sensitivity
metric: the longer updates sit in aggregation buffers, the staler the
distances PEs speculate with, and the more waste they produce
(Fig 15/17: wasted PP < WPs < WW on small inputs).

Prioritization (the paper's "threshold" co-design feature) is realized
as a per-chare priority queue: accepted updates are relaxed in
smallest-distance-first order, so cheap distances propagate before
speculative large ones. TramLib's priority flush can additionally be
enabled through ``priority_threshold``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.apps.graphs import Graph, generate_graph
from repro.machine.costs import CostModel
from repro.machine.topology import MachineConfig
from repro.runtime.system import RuntimeSystem
from repro.tram import TramConfig, make_scheme


@dataclass(frozen=True)
class SsspResult:
    """Outcome of one SSSP run."""

    scheme: str
    machine: MachineConfig
    num_vertices: int
    num_edges: int
    total_time_ns: float
    #: Updates received (incl. local) that did not improve a distance.
    wasted_updates: int
    #: All updates generated (relaxations sent through TramLib).
    total_updates: int
    mean_latency_ns: float
    messages_sent: int
    events: int
    #: Final distance of every vertex (inf = unreachable).
    distances: np.ndarray

    @property
    def wasted_fraction(self) -> float:
        """Wasted updates normalized by total updates."""
        return self.wasted_updates / self.total_updates if self.total_updates else 0.0


class _SsspChare:
    """Per-PE chare: owned distances + a smallest-first work queue."""

    __slots__ = ("wid", "dist", "pq", "loop_scheduled", "wasted")

    def __init__(self, wid: int, num_local: int) -> None:
        self.wid = wid
        self.dist = np.full(num_local, np.inf)
        self.pq: list = []
        self.loop_scheduled = False
        self.wasted = 0


def run_sssp(
    machine: MachineConfig,
    scheme: str,
    *,
    graph: Optional[Graph] = None,
    num_vertices: int = 1024,
    avg_degree: int = 8,
    graph_kind: str = "uniform",
    source: int = 0,
    buffer_items: int = 32,
    item_bytes: int = 16,
    relax_per_task: int = 8,
    priority_threshold: Optional[float] = None,
    costs: Optional[CostModel] = None,
    seed: int = 0,
) -> SsspResult:
    """Run speculative SSSP and return time + wasted-update metrics.

    Parameters
    ----------
    graph:
        Pre-built graph; generated from ``num_vertices``/``avg_degree``/
        ``graph_kind``/``seed`` when omitted.
    relax_per_task:
        Accepted updates relaxed per PE task (bounds task granularity so
        communication interleaves with computation).
    priority_threshold:
        Optional TramLib priority flush (paper future work): updates
        whose distance is below this flush their buffer immediately.
    """
    if graph is None:
        graph = generate_graph(num_vertices, avg_degree, seed=seed, kind=graph_kind)
    n = graph.num_vertices
    rt = RuntimeSystem(machine, costs, seed=seed)
    W = machine.total_workers
    chares = rt.pdes_share(
        [_SsspChare(w, (n - w + W - 1) // W) for w in range(W)],
        merge="worker",
    )

    def accept(ctx, chare: _SsspChare, vertex: int, d: float) -> None:
        """Accept-or-waste one tentative distance at its owner."""
        local = vertex // W
        if d >= chare.dist[local]:
            chare.wasted += 1
            return
        chare.dist[local] = d
        ctx.charge(rt.costs.gen_ns)  # heap push
        heapq.heappush(chare.pq, (d, vertex))
        if not chare.loop_scheduled:
            chare.loop_scheduled = True
            ctx.emit(ctx.worker.post_task, relax_loop, chare)

    def deliver(ctx, item) -> None:
        vertex, d = item.payload
        accept(ctx, chares[ctx.worker.wid], vertex, d)

    tram = make_scheme(
        scheme,
        rt,
        TramConfig(
            buffer_items=buffer_items,
            item_bytes=item_bytes,
            idle_flush=True,
            priority_threshold=priority_threshold,
        ),
        deliver_item=deliver,
    )

    def relax_loop(ctx, chare: _SsspChare) -> None:
        """Relax up to ``relax_per_task`` accepted updates, best first."""
        budget = relax_per_task
        while chare.pq and budget > 0:
            ctx.charge(rt.costs.gen_ns)  # heap pop
            d, vertex = heapq.heappop(chare.pq)
            local = vertex // W
            if d > chare.dist[local]:
                continue  # superseded before we propagated it
            budget -= 1
            targets, weights = graph.neighbors(vertex)
            for u, w_edge in zip(targets.tolist(), weights.tolist()):
                nd = d + w_edge
                ctx.charge(rt.costs.gen_ns)
                tram.insert(ctx, int(u) % W, payload=(int(u), nd), priority=nd)
        if chare.pq:
            ctx.emit(ctx.worker.post_task, relax_loop, chare)
        else:
            chare.loop_scheduled = False

    def seed_task(ctx) -> None:
        accept(ctx, chares[ctx.worker.wid], source, 0.0)

    rt.post(source % W, seed_task)
    stats = rt.run()

    distances = np.full(n, np.inf)
    for w, chare in enumerate(chares):
        distances[w::W] = chare.dist[: len(distances[w::W])]
    s = tram.stats
    return SsspResult(
        scheme=tram.name,
        machine=machine,
        num_vertices=n,
        num_edges=graph.num_edges,
        total_time_ns=stats.end_time,
        wasted_updates=sum(c.wasted for c in chares),
        total_updates=s.items_inserted,
        mean_latency_ns=s.latency.mean,
        messages_sent=s.messages_sent,
        events=stats.events_fired,
        distances=distances,
    )
