"""Benchmark applications from the paper (§III-D).

* :mod:`~repro.apps.pingack` — the PingAck microbenchmark exposing the
  comm-thread bottleneck (Figs 2–3);
* :mod:`~repro.apps.histogram` — Bale-suite histogramming: pure-overhead
  streaming updates (Figs 8–11);
* :mod:`~repro.apps.indexgather` — Bale-suite index-gather:
  request/response, the paper's latency probe (Figs 12–13);
* :mod:`~repro.apps.sssp` — speculative single-source shortest paths
  with wasted-update accounting (Figs 14–17);
* :mod:`~repro.apps.pdes` — synthetic PHOLD on a placeholder optimistic
  engine counting out-of-order deliveries (Fig 18);
* :mod:`~repro.apps.graphs` — deterministic graph generators feeding
  SSSP.
"""

from repro.apps.alltoall import AllToAllResult, run_alltoall
from repro.apps.histogram import HistogramResult, run_histogram
from repro.apps.indexgather import IndexGatherResult, run_indexgather
from repro.apps.pingack import PingAckResult, run_pingack
from repro.apps.sssp import SsspResult, run_sssp
from repro.apps.pdes import PholdResult, run_phold

__all__ = [
    "AllToAllResult",
    "HistogramResult",
    "IndexGatherResult",
    "PholdResult",
    "PingAckResult",
    "SsspResult",
    "run_alltoall",
    "run_histogram",
    "run_indexgather",
    "run_phold",
    "run_pingack",
    "run_sssp",
]
