"""Deterministic graph generation and partitioning for SSSP.

Graphs are produced directly as CSR arrays with ``numpy`` (vectorized,
reproducible from a seed). Two generators:

* ``uniform`` — Erdos–Renyi-style: each vertex draws ``avg_degree``
  neighbours uniformly (multi-edges collapsed);
* ``rmat`` — a recursive-matrix (Graph500-flavoured) skewed-degree
  generator, the shape typical of the irregular applications the paper
  targets.

Vertices are partitioned cyclically over workers (``owner = v % W``),
matching the fine-grained all-to-all traffic of the paper's SSSP.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError


@dataclass(frozen=True)
class Graph:
    """Weighted directed graph in CSR form."""

    num_vertices: int
    indptr: np.ndarray
    indices: np.ndarray
    weights: np.ndarray

    @property
    def num_edges(self) -> int:
        return int(self.indices.shape[0])

    def neighbors(self, v: int):
        """(targets, weights) arrays of vertex ``v``'s out-edges."""
        lo, hi = self.indptr[v], self.indptr[v + 1]
        return self.indices[lo:hi], self.weights[lo:hi]

    def degree(self, v: int) -> int:
        return int(self.indptr[v + 1] - self.indptr[v])


def _edges_to_csr(n: int, src: np.ndarray, dst: np.ndarray, rng) -> Graph:
    # Drop self loops and duplicate (src, dst) pairs, then sort by src.
    keep = src != dst
    src, dst = src[keep], dst[keep]
    key = src.astype(np.int64) * n + dst
    _, unique_idx = np.unique(key, return_index=True)
    src, dst = src[unique_idx], dst[unique_idx]
    order = np.argsort(src, kind="stable")
    src, dst = src[order], dst[order]
    weights = rng.integers(1, 11, size=src.shape[0]).astype(np.float64)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.add.at(indptr, src + 1, 1)
    np.cumsum(indptr, out=indptr)
    return Graph(n, indptr, dst.astype(np.int64), weights)


def generate_uniform(n: int, avg_degree: int, seed: int = 0) -> Graph:
    """Uniform random directed graph with ~``avg_degree`` out-edges."""
    if n < 2 or avg_degree < 1:
        raise ConfigError("need n >= 2 and avg_degree >= 1")
    rng = np.random.default_rng(seed)
    m = n * avg_degree
    src = rng.integers(0, n, size=m)
    dst = rng.integers(0, n, size=m)
    return _edges_to_csr(n, src, dst, rng)


def generate_rmat(
    n: int,
    avg_degree: int,
    seed: int = 0,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
) -> Graph:
    """R-MAT (Graph500-style) skewed random graph.

    ``n`` is rounded up to the next power of two internally; vertices
    beyond the requested ``n`` are folded back with a modulo, preserving
    the skew.
    """
    if n < 2 or avg_degree < 1:
        raise ConfigError("need n >= 2 and avg_degree >= 1")
    if not 0 < a + b + c < 1:
        raise ConfigError("require 0 < a+b+c < 1")
    rng = np.random.default_rng(seed)
    scale = int(np.ceil(np.log2(n)))
    m = n * avg_degree
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    for level in range(scale):
        r = rng.random(m)
        # Quadrant probabilities: a (0,0), b (0,1), c (1,0), d (1,1).
        go_right = ((r >= a) & (r < a + b)) | (r >= a + b + c)
        go_down = r >= a + b
        src = src * 2 + go_down
        dst = dst * 2 + go_right
    src %= n
    dst %= n
    return _edges_to_csr(n, src, dst, rng)


def generate_graph(
    n: int, avg_degree: int, seed: int = 0, kind: str = "uniform"
) -> Graph:
    """Dispatch on ``kind`` (``uniform`` or ``rmat``)."""
    if kind == "uniform":
        return generate_uniform(n, avg_degree, seed)
    if kind == "rmat":
        return generate_rmat(n, avg_degree, seed)
    raise ConfigError(f"unknown graph kind {kind!r}")


def owner_of(vertex: int, total_workers: int) -> int:
    """Cyclic partition: the worker owning ``vertex``."""
    return vertex % total_workers


def to_networkx(graph: Graph):
    """Convert to a ``networkx.DiGraph`` (optional dependency)."""
    import networkx as nx

    g = nx.DiGraph()
    g.add_nodes_from(range(graph.num_vertices))
    for v in range(graph.num_vertices):
        targets, weights = graph.neighbors(v)
        for u, w in zip(targets.tolist(), weights.tolist()):
            g.add_edge(v, u, weight=w)
    return g
