"""Index-gather (IG) — the Bale-suite request/response latency probe.

Every worker sends ``requests_per_pe`` read requests to random PEs;
each receiving PE answers with a response item back to the requester
(paper §III-D). Because request and response travel through TramLib,
the measured round trip is (request item latency) + (responder turn-
around) + (response item latency); the paper uses this benchmark to
compare the *item latency* of the schemes (Fig 12: PP < WPs < WW) and
their total-time overheads (Fig 13).

Two scheme instances share the runtime: one carries requests, one
responses (both use the same scheme under test). Responses use idle
flushing — a responder cannot know when requesters are done.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.machine.costs import CostModel
from repro.machine.topology import MachineConfig
from repro.runtime.quiescence import QDCounter
from repro.runtime.system import RuntimeSystem
from repro.tram import TramConfig, make_scheme


@dataclass(frozen=True)
class IndexGatherResult:
    """Outcome of one index-gather run."""

    scheme: str
    machine: MachineConfig
    requests_per_pe: int
    buffer_items: int
    total_time_ns: float
    #: Mean one-way request item latency (creation -> responder PE).
    request_latency_ns: float
    #: Mean one-way response item latency (creation -> requester PE).
    response_latency_ns: float
    messages_sent: int
    bytes_sent: int
    events: int
    #: Approximate percentiles of the request-leg item latency (from a
    #: deterministic reservoir sample); None when sampling is disabled.
    request_latency_p50_ns: Optional[float] = None
    request_latency_p99_ns: Optional[float] = None

    @property
    def round_trip_latency_ns(self) -> float:
        """Mean aggregation-path round trip (request + response legs)."""
        return self.request_latency_ns + self.response_latency_ns


def run_indexgather(
    machine: MachineConfig,
    scheme: str,
    *,
    requests_per_pe: int = 4096,
    buffer_items: int = 64,
    item_bytes: int = 16,
    batch: int = 256,
    latency_sample: int = 2048,
    costs: Optional[CostModel] = None,
    seed: int = 0,
) -> IndexGatherResult:
    """Run index-gather and return latency + overhead metrics.

    ``latency_sample`` sizes the deterministic reservoir used for the
    p50/p99 latency percentiles (0 disables sampling).
    """
    rt = RuntimeSystem(machine, costs, seed=seed)
    W = machine.total_workers
    qd_req = rt.pdes_share(QDCounter())
    qd_resp = rt.pdes_share(QDCounter())
    responses_received = rt.pdes_share(np.zeros(W, dtype=np.int64))

    # Responses: created by the request handler below; delivered back to
    # the requesting PE. Responders flush on idle (they cannot know when
    # the request stream ends).
    def deliver_response(ctx, wid, count, src_ids, src_counts):
        responses_received[wid] += count
        qd_resp.consume(count)

    resp_tram = make_scheme(
        scheme,
        rt,
        TramConfig(
            buffer_items=buffer_items,
            item_bytes=item_bytes,
            idle_flush=True,
        ),
        deliver_bulk=deliver_response,
    )

    def deliver_request(ctx, wid, count, src_ids, src_counts):
        qd_req.consume(count)
        # Look up the requested values and answer every contributor.
        ctx.charge(count * rt.costs.gen_ns)
        counts = np.zeros(W, dtype=np.int64)
        counts[src_ids] = src_counts
        qd_resp.produce(count)
        resp_tram.insert_bulk(ctx, counts)

    req_tram = make_scheme(
        scheme,
        rt,
        TramConfig(
            buffer_items=buffer_items,
            item_bytes=item_bytes,
            idle_flush=False,
            latency_sample=latency_sample,
        ),
        deliver_bulk=deliver_request,
    )

    def driver(ctx, remaining: int):
        wid = ctx.worker.wid
        k = min(batch, remaining)
        rng = rt.rng.stream(f"ig/{wid}")
        counts = np.bincount(rng.integers(0, W, k), minlength=W)
        ctx.charge(k * rt.costs.gen_ns)
        qd_req.produce(k)
        req_tram.insert_bulk(ctx, counts)
        remaining -= k
        if remaining > 0:
            ctx.emit(ctx.worker.post_task, driver, remaining)
        else:
            req_tram.flush_when_done(ctx)

    for wid in range(W):
        rt.post(wid, driver, requests_per_pe)
    stats = rt.run()
    qd_req.require_balanced()
    qd_resp.require_balanced()
    assert int(responses_received.sum()) == requests_per_pe * W

    return IndexGatherResult(
        scheme=req_tram.name,
        machine=machine,
        requests_per_pe=requests_per_pe,
        buffer_items=buffer_items,
        total_time_ns=stats.end_time,
        request_latency_ns=req_tram.stats.latency.mean,
        response_latency_ns=resp_tram.stats.latency.mean,
        messages_sent=req_tram.stats.messages_sent + resp_tram.stats.messages_sent,
        bytes_sent=req_tram.stats.bytes_sent + resp_tram.stats.bytes_sent,
        events=stats.events_fired,
        request_latency_p50_ns=req_tram.stats.latency.percentile(50),
        request_latency_p99_ns=req_tram.stats.latency.percentile(99),
    )
