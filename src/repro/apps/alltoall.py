"""All-to-all personalized exchange (paper §I's first use case).

    "The use-cases for message aggregation range from all-to-all
    communication in MPI, where every rank wishes to send a relatively
    small number of items to every other rank, to streaming scenarios."

Every worker contributes ``items_per_pair`` items to every other
worker, then flushes. This is the *short-stream* extreme: buffers
rarely fill, so the end-of-phase flush term of §III-C dominates and the
destination-process schemes (one flush message per process vs. per
worker) win by the largest factor. An extension beyond the paper's
figures, included because the paper's message-count analysis is exactly
about this regime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.machine.costs import CostModel
from repro.machine.topology import MachineConfig
from repro.runtime.quiescence import QDCounter
from repro.runtime.system import RuntimeSystem
from repro.tram import TramConfig, make_scheme


@dataclass(frozen=True)
class AllToAllResult:
    """Outcome of one all-to-all exchange."""

    scheme: str
    machine: MachineConfig
    items_per_pair: int
    buffer_items: int
    total_time_ns: float
    messages_sent: int
    messages_flush: int
    bytes_sent: int
    mean_latency_ns: float
    events: int


def run_alltoall(
    machine: MachineConfig,
    scheme: str,
    *,
    items_per_pair: int = 4,
    buffer_items: int = 64,
    item_bytes: int = 8,
    costs: Optional[CostModel] = None,
    seed: int = 0,
) -> AllToAllResult:
    """Run a personalized all-to-all through the given scheme.

    Parameters
    ----------
    items_per_pair:
        Items every worker sends to every other worker (small by
        design: the short-stream / flush-dominated regime).
    """
    rt = RuntimeSystem(machine, costs, seed=seed)
    W = machine.total_workers
    qd = QDCounter()
    received = np.zeros(W, dtype=np.int64)

    def deliver(ctx, wid, count, src_ids, src_counts):
        received[wid] += count
        qd.consume(count)

    tram = make_scheme(
        scheme,
        rt,
        TramConfig(buffer_items=buffer_items, item_bytes=item_bytes),
        deliver_bulk=deliver,
    )

    def driver(ctx):
        counts = np.full(W, items_per_pair, dtype=np.int64)
        counts[ctx.worker.wid] = 0  # no self-sends
        ctx.charge(int(counts.sum()) * rt.costs.gen_ns)
        qd.produce(int(counts.sum()))
        tram.insert_bulk(ctx, counts)
        tram.flush_when_done(ctx)

    for wid in range(W):
        rt.post(wid, driver)
    stats = rt.run()
    qd.require_balanced()
    expected_per_worker = items_per_pair * (W - 1)
    assert (received == expected_per_worker).all()

    s = tram.stats
    return AllToAllResult(
        scheme=tram.name,
        machine=machine,
        items_per_pair=items_per_pair,
        buffer_items=buffer_items,
        total_time_ns=stats.end_time,
        messages_sent=s.messages_sent,
        messages_flush=s.messages_flush,
        bytes_sent=s.bytes_sent,
        mean_latency_ns=s.latency.mean,
        events=stats.events_fired,
    )
