"""Synthetic PHOLD on the placeholder optimistic engine (Fig 18).

Classic PHOLD: a fixed population of events circulates among LPs spread
across all workers. Executing an event at virtual time ``ts`` schedules
one successor at ``ts + lookahead + Exp(mean_delay)`` on a uniformly
random LP; successors to remote LPs travel through TramLib. Each worker
executes events until its quota, then keeps absorbing (so the system
drains). The figure of merit is the number of out-of-order (rejected)
events — the rollback proxy — which grows with item latency; the paper
measures >5% fewer rejects for PP than the worker-buffered schemes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.apps.pdes.engine import LpState, OptimisticEngine
from repro.machine.costs import CostModel
from repro.machine.topology import MachineConfig
from repro.runtime.system import RuntimeSystem
from repro.tram import TramConfig, make_scheme


@dataclass(frozen=True)
class PholdResult:
    """Outcome of one PHOLD run."""

    scheme: str
    machine: MachineConfig
    lps_per_worker: int
    events_executed: int
    #: Events that arrived after their LP's virtual clock had passed
    #: them (the rollback proxy; paper Fig 18 "wasted updates").
    events_rejected: int
    total_time_ns: float
    mean_latency_ns: float
    messages_sent: int
    events: int

    @property
    def rejected_fraction(self) -> float:
        return (
            self.events_rejected / self.events_executed
            if self.events_executed
            else 0.0
        )


def run_phold(
    machine: MachineConfig,
    scheme: str,
    *,
    lps_per_worker: int = 8,
    init_events_per_lp: int = 4,
    quota_per_worker: int = 512,
    lookahead: float = 1.0,
    mean_delay: float = 5.0,
    events_per_task: int = 4,
    buffer_items: int = 32,
    item_bytes: int = 16,
    costs: Optional[CostModel] = None,
    seed: int = 0,
) -> PholdResult:
    """Run synthetic PHOLD and return reject/overhead metrics.

    Parameters
    ----------
    lps_per_worker / init_events_per_lp:
        Workload size; the circulating event population is
        ``W * lps_per_worker * init_events_per_lp``.
    quota_per_worker:
        Events each worker executes before it stops spawning successors
        (drains the system deterministically).
    lookahead / mean_delay:
        Virtual-time increment of successors: ``lookahead + Exp(mean)``.
    """
    rt = RuntimeSystem(machine, costs, seed=seed)
    W = machine.total_workers
    total_lps = W * lps_per_worker

    engines = rt.pdes_share(
        [
            OptimisticEngine(
                lps=[LpState(lp_id=w + W * i) for i in range(lps_per_worker)]
            )
            for w in range(W)
        ],
        merge="worker",
    )
    # events spawned by each worker (quota control)
    spawned = rt.pdes_share([0] * W, merge="worker")
    loop_live = rt.pdes_share([False] * W, merge="worker")

    def deliver(ctx, item) -> None:
        lp_global, virtual_ts = item.payload
        wid = ctx.worker.wid
        eng = engines[wid]
        ctx.charge(rt.costs.gen_ns)
        eng.enqueue(lp_global // W, virtual_ts)
        if not loop_live[wid]:
            loop_live[wid] = True
            ctx.emit(ctx.worker.post_task, event_loop)

    tram = make_scheme(
        scheme,
        rt,
        TramConfig(
            buffer_items=buffer_items,
            item_bytes=item_bytes,
            idle_flush=True,
        ),
        deliver_item=deliver,
    )

    def event_loop(ctx) -> None:
        wid = ctx.worker.wid
        eng = engines[wid]
        rng = rt.rng.stream(f"phold/{wid}")
        for _ in range(events_per_task):
            if not eng.has_events:
                break
            ctx.charge(4 * rt.costs.gen_ns)  # event execution cost
            _, virtual_ts, _ = eng.execute_next()
            if spawned[wid] < quota_per_worker:
                spawned[wid] += 1
                succ_ts = virtual_ts + lookahead + rng.exponential(mean_delay)
                dst_lp = int(rng.integers(0, total_lps))
                tram.insert(
                    ctx,
                    dst_lp % W,
                    payload=(dst_lp, succ_ts),
                    priority=succ_ts,
                )
        if eng.has_events:
            ctx.emit(ctx.worker.post_task, event_loop)
        else:
            loop_live[wid] = False

    def seed_task(ctx) -> None:
        wid = ctx.worker.wid
        rng = rt.rng.stream(f"phold-init/{wid}")
        eng = engines[wid]
        for i in range(lps_per_worker):
            for _ in range(init_events_per_lp):
                eng.enqueue(i, float(rng.exponential(mean_delay)))
        loop_live[wid] = True
        ctx.emit(ctx.worker.post_task, event_loop)

    for wid in range(W):
        rt.post(wid, seed_task)
    stats = rt.run()

    executed = sum(e.total_executed for e in engines)
    rejected = sum(e.total_rejected for e in engines)
    s = tram.stats
    return PholdResult(
        scheme=tram.name,
        machine=machine,
        lps_per_worker=lps_per_worker,
        events_executed=executed,
        events_rejected=rejected,
        total_time_ns=stats.end_time,
        mean_latency_ns=s.latency.mean,
        messages_sent=s.messages_sent,
        events=stats.events_fired,
    )
