"""Parallel discrete-event simulation benchmark (paper Fig 18).

:mod:`~repro.apps.pdes.engine` implements the *placeholder optimistic
engine* the paper describes: no real rollbacks — it only tracks events
arriving out of timestamp order at each logical process (LP), the way an
optimistic PDES would have to roll back. :mod:`~repro.apps.pdes.phold`
is the synthetic PHOLD workload driving it through TramLib.
"""

from repro.apps.pdes.engine import LpState, OptimisticEngine
from repro.apps.pdes.phold import PholdResult, run_phold

__all__ = ["LpState", "OptimisticEngine", "PholdResult", "run_phold"]
