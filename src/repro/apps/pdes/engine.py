"""Placeholder optimistic PDES engine.

The paper: "we do not perform real rollbacks; instead we only keep track
of out-of-order messages received." Each worker hosts a set of logical
processes (LPs); events carry virtual timestamps. Events are executed in
the order the worker can see them (smallest available timestamp first);
an event whose timestamp precedes its LP's last executed timestamp is a
**rejected/out-of-order event** — the proxy for a rollback. Aggregation
latency directly controls how many arrivals are late, which is what
Fig 18 compares across schemes.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import List, Tuple


@dataclass
class LpState:
    """One logical process."""

    lp_id: int
    last_ts: float = -float("inf")
    executed: int = 0
    rejected: int = 0


@dataclass
class OptimisticEngine:
    """Per-worker event pool executing in locally-visible ts order."""

    lps: List[LpState]
    #: Future event list: (virtual_ts, seq, lp_index). ``seq`` keeps the
    #: ordering deterministic for equal timestamps.
    fel: List[Tuple[float, int, int]] = field(default_factory=list)
    _seq: int = 0

    def enqueue(self, lp_index: int, virtual_ts: float) -> None:
        """Add an arriving event for a local LP."""
        heapq.heappush(self.fel, (virtual_ts, self._seq, lp_index))
        self._seq += 1

    @property
    def has_events(self) -> bool:
        return bool(self.fel)

    def execute_next(self) -> Tuple[LpState, float, bool]:
        """Execute the smallest-timestamp available event.

        Returns
        -------
        (lp, virtual_ts, in_order):
            ``in_order`` is False when the event arrived after its LP had
            already executed a later timestamp — the rollback proxy.
        """
        virtual_ts, _, lp_index = heapq.heappop(self.fel)
        lp = self.lps[lp_index]
        in_order = virtual_ts >= lp.last_ts
        if in_order:
            lp.last_ts = virtual_ts
        else:
            lp.rejected += 1
        lp.executed += 1
        return lp, virtual_ts, in_order

    @property
    def total_rejected(self) -> int:
        return sum(lp.rejected for lp in self.lps)

    @property
    def total_executed(self) -> int:
        return sum(lp.executed for lp in self.lps)
