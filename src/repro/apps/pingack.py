"""PingAck — the comm-thread bottleneck microbenchmark (paper §III-A).

Two physical nodes. Every worker PE on node 0 sends ``messages_per_pe``
messages of a given size to the corresponding PE on node 1; each node-1
PE acks to PE 0 once it has received *all* its messages; the measured
time runs from the first send to the last ack (paper Fig 2).

The benchmark sends *runtime* messages directly (no aggregation): its
purpose is to expose how the per-process comm thread serializes
fine-grained traffic. Sweeping processes-per-node while holding the
worker count fixed reproduces Fig 3: SMP with one process per node is
several times slower than non-SMP, and adding processes (more comm
threads) closes the gap.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.machine.costs import CostModel
from repro.machine.topology import MachineConfig
from repro.network.message import NetMessage
from repro.runtime.system import RuntimeSystem


@dataclass(frozen=True)
class PingAckResult:
    """Outcome of one PingAck run."""

    machine: MachineConfig
    messages_per_pe: int
    payload_bytes: int
    #: Time of the last ack's arrival at PE 0 (ns).
    total_time_ns: float
    events: int

    @property
    def label(self) -> str:
        if not self.machine.smp:
            return f"non-SMP {self.machine.workers_per_node} ranks/node"
        return (
            f"SMP {self.machine.processes_per_node} proc x "
            f"{self.machine.workers_per_process} wk"
        )


def run_pingack(
    machine: MachineConfig,
    *,
    messages_per_pe: int = 250,
    payload_bytes: int = 1024,
    burst: int = 8,
    costs: CostModel | None = None,
    seed: int = 0,
) -> PingAckResult:
    """Run PingAck on a two-node machine.

    Parameters
    ----------
    machine:
        Must have exactly 2 nodes; workers on node 0 send to their
        counterparts on node 1.
    messages_per_pe:
        Messages each node-0 PE sends (the paper uses 1000; scaled runs
        use fewer — the bottleneck shape is rate-, not count-driven).
    payload_bytes:
        Application payload per message.
    burst:
        Messages issued per driver task before yielding the PE, allowing
        receive processing to interleave with sending.
    """
    if machine.nodes != 2:
        raise ConfigError("PingAck requires exactly 2 nodes")
    rt = RuntimeSystem(machine, costs, seed=seed)
    wpn = machine.workers_per_node
    size = rt.costs.message_bytes(1, payload_bytes)

    received = [0] * wpn  # per node-1 PE (index = wid - wpn)
    acks = {"n": 0, "t_done": 0.0}

    def driver(ctx, sent: int):
        wid = ctx.worker.wid
        n = min(burst, messages_per_pe - sent)
        for _ in range(n):
            msg = NetMessage(
                kind="pingack.data",
                src_worker=wid,
                dst_process=machine.process_of_worker(wid + wpn),
                dst_worker=wid + wpn,
                size_bytes=size,
                expedited=False,
            )
            ctx.charge(rt.costs.pack_msg_ns)
            if not machine.smp:
                ctx.charge(rt.costs.nonsmp_send_service_ns(size))
            ctx.emit(rt.transport.send, msg)
        sent += n
        if sent < messages_per_pe:
            ctx.emit(ctx.worker.post_task, driver, sent)

    def on_data(ctx, msg):
        idx = ctx.worker.wid - wpn
        received[idx] += 1
        if received[idx] == messages_per_pe:
            ack = NetMessage(
                kind="pingack.ack",
                src_worker=ctx.worker.wid,
                dst_process=machine.process_of_worker(0),
                dst_worker=0,
                size_bytes=rt.costs.message_bytes(1, 8),
                expedited=False,
            )
            ctx.charge(rt.costs.pack_msg_ns)
            if not machine.smp:
                ctx.charge(rt.costs.nonsmp_send_service_ns(ack.size_bytes))
            ctx.emit(rt.transport.send, ack)

    def on_ack(ctx, msg):
        acks["n"] += 1
        if acks["n"] == wpn:
            acks["t_done"] = ctx.now

    rt.register_handler("pingack.data", on_data)
    rt.register_handler("pingack.ack", on_ack)
    for wid in range(wpn):
        rt.post(wid, driver, 0)
    stats = rt.run()
    if acks["n"] != wpn:
        raise ConfigError(f"PingAck incomplete: {acks['n']}/{wpn} acks")
    return PingAckResult(
        machine=machine,
        messages_per_pe=messages_per_pe,
        payload_bytes=payload_bytes,
        total_time_ns=acks["t_done"],
        events=stats.events_fired,
    )
