"""Simulated-time units and helpers.

The simulator's base unit is the **nanosecond**, carried as a ``float``.
All cost-model constants (:mod:`repro.machine.costs`) are expressed in
nanoseconds; the helpers here exist so call-sites read naturally::

    engine.after(5 * US, fire)
    print(fmt_time(engine.now))
"""

from __future__ import annotations

#: One nanosecond (the base unit).
NS: float = 1.0
#: One microsecond in nanoseconds.
US: float = 1_000.0
#: One millisecond in nanoseconds.
MS: float = 1_000_000.0
#: One second in nanoseconds.
SEC: float = 1_000_000_000.0

_UNITS = ((SEC, "s"), (MS, "ms"), (US, "us"), (NS, "ns"))


def fmt_time(ns: float) -> str:
    """Render a simulated duration with a human-friendly unit.

    Parameters
    ----------
    ns:
        Duration in nanoseconds. Negative values are formatted with a
        leading minus sign.

    Examples
    --------
    >>> fmt_time(1500.0)
    '1.500us'
    >>> fmt_time(0.0)
    '0ns'
    """
    if ns == 0:
        return "0ns"
    sign = "-" if ns < 0 else ""
    mag = abs(ns)
    for scale, suffix in _UNITS:
        if mag >= scale:
            return f"{sign}{mag / scale:.3f}{suffix}"
    return f"{sign}{mag:.3f}ns"


def to_us(ns: float) -> float:
    """Convert nanoseconds to microseconds."""
    return ns / US


def to_ms(ns: float) -> float:
    """Convert nanoseconds to milliseconds."""
    return ns / MS


def to_seconds(ns: float) -> float:
    """Convert nanoseconds to seconds."""
    return ns / SEC
