"""Named deterministic random-number streams.

Every stochastic component (per-worker destination draws, PHOLD delays,
graph generation, ...) pulls its own :class:`numpy.random.Generator`
keyed by a stable string name. This gives two guarantees:

* **Reproducibility** — the same root seed always produces the same
  simulation, regardless of the order in which components are created.
* **Independence** — streams are derived through
  :class:`numpy.random.SeedSequence` spawning, so per-worker streams do
  not overlap even for thousands of workers.
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np


class RngStreams:
    """Factory of independent, named ``numpy`` generator streams.

    Parameters
    ----------
    root_seed:
        Non-negative integer root of the whole simulation's randomness.

    Examples
    --------
    >>> streams = RngStreams(7)
    >>> a = streams.stream("worker/3")
    >>> b = streams.stream("worker/4")
    >>> float(a.random()) != float(b.random())
    True
    >>> streams2 = RngStreams(7)
    >>> float(streams2.stream("worker/3").random()) == float(RngStreams(7).stream("worker/3").random())
    True
    """

    def __init__(self, root_seed: int = 0) -> None:
        if root_seed < 0:
            raise ValueError("root_seed must be non-negative")
        self.root_seed = int(root_seed)
        self._cache: Dict[str, np.random.Generator] = {}

    @staticmethod
    def _key_of(name: str) -> int:
        """Stable 32-bit key derived from the stream name.

        ``zlib.crc32`` rather than ``hash()`` because the latter is
        salted per process and would break reproducibility.
        """
        return zlib.crc32(name.encode("utf-8"))

    def stream(self, name: str) -> np.random.Generator:
        """Return the (cached) generator for ``name``."""
        gen = self._cache.get(name)
        if gen is None:
            seq = np.random.SeedSequence([self.root_seed, self._key_of(name)])
            gen = np.random.default_rng(seq)
            self._cache[name] = gen
        return gen

    def fresh(self, name: str) -> np.random.Generator:
        """Return a *new* generator for ``name``, resetting its state."""
        self._cache.pop(name, None)
        return self.stream(name)

    def spawn(self, name: str, n: int) -> list:
        """Return ``n`` independent child generators under ``name``."""
        seq = np.random.SeedSequence([self.root_seed, self._key_of(name)])
        return [np.random.default_rng(child) for child in seq.spawn(n)]
