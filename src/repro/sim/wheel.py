"""Hierarchical timer wheel for timeout-class events.

Flush timeouts, retransmit timers, and credit-release timers share a
pattern the binary heap handles worst: armed far in the future, cancelled
(or rearmed) long before they fire, at high rates. A heap pays O(log n)
per arm on a structure inflated by corpses; a timer wheel pays O(1) per
arm and per cancel, deferring all ordering work until a slot actually
comes due — and most timeout events never do.

Layout
------
``levels`` rings of ``slots`` buckets each. Level ``k`` buckets span
``granularity * slots**k`` nanoseconds, so with the defaults
(g=1024 ns, 256 slots, 3 levels) the wheel covers ~17 s of simulated
time; anything beyond that sits in an overflow list until the cursor
gets close. ``granularity`` is rounded up to a power of two so that all
slot arithmetic on (power-of-two-scaled) float timestamps is exact —
bucket boundaries must never disagree with the heap comparison the
engine uses to merge wheel and heap events.

The wheel *materializes* one level-0 slot at a time: ``_current`` is a
small heap holding every pending event with ``time < _cur_end``. Arms
that land inside the materialized window go straight into that heap, so
the wheel is correct even when a timer is armed for (almost) *now*.
When the window drains, the cursor advances to the next non-empty
level-0 bucket, cascading higher-level buckets down as they come due.

Determinism: events are the ``(time, seq)``-leading lists of
:mod:`repro.sim.event`, ``_current`` is a real heap over them, and the
cursor only ever advances to the earliest non-empty bucket — so
:meth:`peek` always returns the globally earliest live wheel event, and
the engine's merge with the precise-ordering heap preserves the exact
``(time, seq)`` total order.

Cancellation is lazy (state flip + counters); corpses are dropped when
their bucket materializes, and any debris left when the wheel goes
fully idle is swept on the next arm.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Optional

from repro.sim.event import EV_STATE, EV_TIME, ST_CANCELLED, ST_WHEEL

_heappush = heappush
_heappop = heappop


class TimerWheel:
    """Hierarchical timer wheel over event lists.

    Parameters
    ----------
    granularity:
        Level-0 slot width in simulated ns (rounded up to a power of
        two). Timers closer together than this still fire in exact
        ``(time, seq)`` order — granularity only affects bucketing cost,
        never ordering.
    slots:
        Buckets per level.
    levels:
        Number of rings.
    """

    __slots__ = (
        "granularity",
        "slots",
        "levels",
        "_rings",
        "_overflow",
        "_current",
        "_pos",
        "_cur_end",
        "_live",
        "_dead",
        "_high",
    )

    def __init__(
        self, granularity: float = 1024.0, slots: int = 256, levels: int = 3
    ) -> None:
        if granularity <= 0.0:
            raise ValueError(f"granularity must be positive, got {granularity}")
        if slots < 2 or levels < 1:
            raise ValueError(f"need slots >= 2 and levels >= 1")
        g = 1.0
        while g < granularity:
            g *= 2.0
        self.granularity = g
        self.slots = slots
        self.levels = levels
        self._rings = [[[] for _ in range(slots)] for _ in range(levels)]
        #: Events beyond the last ring's horizon.
        self._overflow: list = []
        #: Materialized window: heap of events with time < _cur_end.
        self._current: list = []
        #: Slot-aligned start of the materialized window.
        self._pos = 0.0
        self._cur_end = g
        self._live = 0
        #: Cancelled corpses still physically inside the structure.
        self._dead = 0
        #: Physical entries (live or dead) sitting in rings >= 1 or in
        #: the overflow list. While zero — the common case — cursor
        #: advances never need to consider cascade ordering.
        self._high = 0

    # ------------------------------------------------------------------
    # Arm / cancel
    # ------------------------------------------------------------------
    def push(self, ev: list) -> None:
        """Arm an event. O(1).

        Marks the event ``ST_WHEEL``; the caller keeps the list as its
        cancellation handle.
        """
        ev[EV_STATE] = ST_WHEEL
        if not self._live:
            # Idle wheel: snap the cursor to the event so arbitrary gaps
            # (or an earlier-than-cursor arm) cost nothing to reach.
            if self._dead:
                self._sweep()
            g = self.granularity
            start = float(int(ev[EV_TIME] / g)) * g
            self._pos = start
            self._cur_end = start + g
        self._live += 1
        self._place(ev)

    def cancel(self, ev: list) -> bool:
        """Cancel an armed event. O(1); the corpse is dropped lazily."""
        if ev[EV_STATE] != ST_WHEEL:
            return False
        ev[EV_STATE] = ST_CANCELLED
        self._live -= 1
        self._dead += 1
        return True

    # ------------------------------------------------------------------
    # Consumption (engine side)
    # ------------------------------------------------------------------
    def peek(self) -> Optional[list]:
        """The earliest live event, or ``None``. Advances the cursor as
        far as needed; amortized O(1) per consumed event."""
        while True:
            cur = self._current
            while cur:
                head = cur[0]
                if head[EV_STATE] == ST_WHEEL:
                    return head
                _heappop(cur)
                self._dead -= 1
            if not self._live:
                return None
            self._advance()

    def pop(self) -> list:
        """Remove and return the head (must follow a successful peek)."""
        self._live -= 1
        return _heappop(self._current)

    def peek_time(self) -> Optional[float]:
        """Time of the earliest live event, or ``None`` if empty."""
        ev = self.peek()
        return None if ev is None else ev[EV_TIME]

    @property
    def live_count(self) -> int:
        """Number of live (non-cancelled) events currently armed."""
        return self._live

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    @property
    def raw_size(self) -> int:
        """Physical entries including corpses (for tests)."""
        return self._live + self._dead

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _place(self, ev: list) -> None:
        """Route one live event to the window, a ring bucket, or overflow."""
        t = ev[EV_TIME]
        if t < self._cur_end:
            _heappush(self._current, ev)
            return
        pos = self._pos
        width = self.granularity
        slots = self.slots
        level = 0
        for ring in self._rings:
            ai = int(t / width)
            if ai - int(pos / width) < slots:
                ring[ai % slots].append(ev)
                if level:
                    self._high += 1
                return
            width *= slots
            level += 1
        self._overflow.append(ev)
        self._high += 1

    def _advance(self) -> None:
        """Move the cursor one step: materialize the earliest due level-0
        bucket, or — when a higher-level bucket comes due at or before it
        — cascade that bucket down first. Only called while live events
        remain.

        The cascade-before-materialize rule is what keeps the merge
        order exact: a level-k bucket spans ``slots**k`` level-0 widths,
        so once the cursor would move past its start, events anywhere in
        its span could be earlier than anything the level-0 scan sees.
        Materializing ring-0 buckets while skipping such a pending
        bucket would fire events out of order (time running backwards
        once the bucket finally cascades)."""
        g = self.granularity
        slots = self.slots
        rings = self._rings
        ring0 = rings[0]
        base0 = int(self._pos / g)
        best0_start = None
        best0_idx = -1
        for step in range(1, slots):
            idx = (base0 + step) % slots
            if ring0[idx]:
                best0_start = float(base0 + step) * g
                best0_idx = idx
                break
        if self._high:
            # Earliest pending bucket in rings >= 1; on equal starts the
            # higher level cascades first (its span encloses the lower).
            high_start = None
            high_level = -1
            high_idx = -1
            width = g * slots
            for level in range(1, self.levels):
                ringk = rings[level]
                basek = int(self._pos / width)
                for step in range(slots):
                    idx = (basek + step) % slots
                    if ringk[idx]:
                        start = float(basek + step) * width
                        if high_start is None or start <= high_start:
                            high_start = start
                            high_level = level
                            high_idx = idx
                        break
                width *= slots
            if high_start is not None and (
                best0_start is None or high_start <= best0_start
            ):
                if high_start > self._pos:
                    # Aligned to this level's width, hence to g too.
                    self._pos = high_start
                    self._cur_end = high_start + g
                ringk = rings[high_level]
                bucket = ringk[high_idx]
                ringk[high_idx] = []
                self._high -= len(bucket)
                if best0_start == high_start:
                    # The ring-0 bucket starting at the same instant is
                    # now the current window; fold it in so it is not
                    # stranded behind the advanced cursor (the scan
                    # above never revisits the cursor's own slot).
                    bucket = bucket + ring0[best0_idx]
                    ring0[best0_idx] = []
                self._redistribute(bucket)
                return
        if best0_start is not None:
            self._pos = best0_start
            self._cur_end = best0_start + g
            bucket = ring0[best0_idx]
            ring0[best0_idx] = []
            heapify(bucket)
            self._current = bucket
            return
        self._drain_overflow()

    def _redistribute(self, bucket: list) -> None:
        for ev in bucket:
            if ev[EV_STATE]:
                self._place(ev)
            else:
                self._dead -= 1

    def _drain_overflow(self) -> None:
        # All rings are empty (the scans above cover every entry they
        # can hold), so every live event sits in the overflow list.
        overflow = self._overflow
        self._overflow = []
        self._high -= len(overflow)
        live = [ev for ev in overflow if ev[EV_STATE]]
        self._dead -= len(overflow) - len(live)
        g = self.granularity
        start = float(int(min(ev[EV_TIME] for ev in live) / g)) * g
        self._pos = start
        self._cur_end = start + g
        for ev in live:
            self._place(ev)

    def _sweep(self) -> None:
        """Drop all corpses; only called when no live events remain."""
        for ring in self._rings:
            for i, bucket in enumerate(ring):
                if bucket:
                    ring[i] = []
        self._current = []
        self._overflow = []
        self._dead = 0
        self._high = 0
