"""Cancellable scheduled events.

An :class:`Event` pairs a firing time with a callback. Ordering is by
``(time, seq)`` where ``seq`` is a monotonically increasing sequence
number assigned by the engine, making the simulation fully deterministic
even when many events share a timestamp (FIFO among ties).

Cancellation is *lazy*: ``cancel()`` only clears the ``alive`` flag; the
engine discards dead events when they reach the head of the queue. This
keeps cancellation O(1), which matters because flush timers are cancelled
far more often than they fire.
"""

from __future__ import annotations

from typing import Any, Callable


class Event:
    """A single scheduled callback in the simulation.

    Attributes
    ----------
    time:
        Absolute simulated time (ns) at which the event fires.
    seq:
        Engine-assigned tie-breaking sequence number.
    fn:
        Callback invoked as ``fn(*args)`` when the event fires.
    alive:
        ``False`` once cancelled; dead events are skipped by the engine.
    """

    __slots__ = ("time", "seq", "fn", "args", "alive", "in_queue")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.alive = True
        #: Maintained by the queue: whether this event object currently
        #: sits in the heap (guards live-count accounting on cancel).
        self.in_queue = False

    def cancel(self) -> None:
        """Mark the event dead; it will be silently dropped by the engine."""
        self.alive = False

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "" if self.alive else " (cancelled)"
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<Event t={self.time:.1f} seq={self.seq} fn={name}{state}>"
