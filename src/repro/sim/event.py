"""Scheduled events, represented as plain 5-slot lists.

An event is ``[time, seq, state, fn, args]``. Ordering is by
``(time, seq)`` where ``seq`` is a monotonically increasing sequence
number assigned by the engine, making the simulation fully deterministic
even when many events share a timestamp (FIFO among ties) — and because
the first two slots are the sort key, ``list.__lt__`` gives the heap
exactly that ordering **in C**, with no Python-level ``__lt__`` call per
comparison. Profiling showed heap comparisons dominating the hot path
(fig 11 quick: ~1.15M ``Event.__lt__`` calls for 98k events), which is
why events are lists rather than instances: the list *is* both the heap
entry and the cancellation handle.

State machine (slot ``EV_STATE``):

``ST_CANCELLED`` (0)
    Cancelled; a corpse. Dropped lazily when it surfaces at the head of
    whichever structure holds it. Falsy on purpose: liveness checks are
    ``if ev[EV_STATE]:``.
``ST_PENDING`` (1)
    Live, waiting in the engine's heap queue; the caller may hold the
    list as a cancellation handle.
``ST_CONSUMED`` (2)
    Popped and fired. Terminal.
``ST_WHEEL`` (3)
    Live, waiting in the timer wheel (see :mod:`repro.sim.wheel`).
``ST_POOLED`` (4)
    Live in the heap, but scheduled through the engine's no-handle fast
    path (:meth:`Engine.call_at`): no reference escaped the engine, so
    after firing the list is recycled through the event pool. Only
    state-4 events are ever pooled — a pooled event can have no stale
    handle pointing at it, so recycling can never resurrect a
    cancelled-by-handle event.

Cancellation is *lazy*: the engine flips the state slot to 0 and counts
the corpse; the structures discard dead events when they reach the head
(or during compaction). This keeps cancellation O(1), which matters
because flush timers are cancelled far more often than they fire.
"""

from __future__ import annotations

from typing import Any, Callable, List

# Slot indices of an event list.
EV_TIME = 0
EV_SEQ = 1
EV_STATE = 2
EV_FN = 3
EV_ARGS = 4

# EV_STATE values.
ST_CANCELLED = 0
ST_PENDING = 1
ST_CONSUMED = 2
ST_WHEEL = 3
ST_POOLED = 4

_STATE_NAMES = ("cancelled", "pending", "fired", "wheel", "pooled")


def Event(time: float, seq: int, fn: Callable[..., Any], args: tuple = ()) -> list:
    """Build an event list in the heap-pending state.

    Kept as a factory with the old class's constructor signature so
    callers and tests that build events directly keep working.
    """
    return [time, seq, ST_PENDING, fn, args]


def describe(ev: List) -> str:
    """Debugging aid: a readable rendering of an event list."""
    name = getattr(ev[EV_FN], "__qualname__", repr(ev[EV_FN]))
    state = _STATE_NAMES[ev[EV_STATE]]
    return f"<Event t={ev[EV_TIME]:.1f} seq={ev[EV_SEQ]} fn={name} ({state})>"
