"""Conservative parallel DES: partition by simulated node, fork workers.

A partitioned run shards a :class:`~repro.runtime.system.RuntimeSystem`
by *simulated node* across fork-based worker processes and executes the
partitions concurrently in wall-clock time, while producing artifacts
that are **canonical-byte-identical** to the sequential engine. The
synchronization protocol is classic conservative PDES with a global
lookahead window:

* **Lookahead** ``L`` is the machine model's minimum inter-node wire
  latency (:meth:`repro.machine.costs.CostModel.min_inter_node_latency_ns`).
  Every cross-partition interaction rides the wire, so an event at time
  ``t`` cannot affect a foreign node before ``t + L``.
* Each round the coordinator computes ``LBTS`` — the minimum over all
  partitions' next-event times and all in-flight cross-partition
  arrivals — and grants every partition the horizon ``H = LBTS + L``.
  Each partition runs its (unmodified) :class:`~repro.sim.engine.Engine`
  fast loop strictly below ``H``; any cross-wire send it performs
  arrives at ``t + wire >= LBTS + L = H``, i.e. never inside anyone's
  already-executed window — that is the conservative safety argument.
  The partition holding the LBTS event always fires at least one event
  per round, so the protocol makes progress.
* **Determinism**: the multi-owner engine allocates partition-stable
  sequence numbers (per-node slots plus per-directed-pair wire slots,
  see :meth:`~repro.sim.engine.Engine.configure_owners`), so a partition
  draws exactly the ``(time, seq)`` keys the sequential engine would,
  and cross-partition arrivals are injected with their sender-allocated
  keys verbatim. Within a partition the heap restores the global
  ``(time, seq)`` total order; across partitions no event can observe a
  foreign event's effects out of order thanks to the lookahead window.
  Order-sensitive float accumulators shared across nodes are sharded
  per node in *both* modes (:class:`repro.tram.stats.NodeShardedLatency`),
  which closes the last bit-identity gap.

Empty grant messages double as the protocol's *null messages*; the
round/stall/imbalance accounting lands in :class:`PdesRunInfo` and is
surfaced as ``pdes.*`` metrics (stripped from canonical artifact bytes,
like all provenance).

Fallback is always safe: any configuration the protocol does not cover
(bounded runs, faults, reliability, flow control, timeline sampling,
tracing, single-node machines, apps that never declared mergeable state)
runs sequentially and records the reason in :class:`PdesRunInfo`.
"""

from __future__ import annotations

import os
import time as _time
import traceback
from dataclasses import dataclass
from heapq import heapify
from itertools import chain
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigError, SimulationError
from repro.sim.engine import RunStats

#: Fields of :class:`PdesRunInfo` exported into run snapshots.
_INFO_FIELDS = (
    "mode",
    "partitions",
    "lookahead_ns",
    "fallback",
    "rounds",
    "null_messages",
    "wire_messages",
    "horizon_stalls_ns",
    "events_per_partition",
    "partition_imbalance",
)


@dataclass(frozen=True)
class PdesConfig:
    """Partitioned-run request.

    Parameters
    ----------
    partitions:
        Worker processes to shard simulated nodes across; clamped to
        the machine's node count at run time.
    record_fires:
        Collect every fired ``(time, seq)`` into ``engine.fire_log``
        (forces the general run loop; used by the equivalence property
        tests).
    """

    partitions: int = 2
    record_fires: bool = False

    def __post_init__(self) -> None:
        if self.partitions < 1:
            raise ConfigError(
                f"partitions must be >= 1, got {self.partitions}"
            )


@dataclass
class PdesRunInfo:
    """What one :meth:`RuntimeSystem.run` did under a PDES config."""

    #: ``"partitioned"`` or ``"sequential"`` (fallback).
    mode: str
    partitions: int
    lookahead_ns: float
    #: Why the run fell back to sequential; ``None`` when partitioned.
    fallback: Optional[str] = None
    #: Synchronization rounds (horizon grants) the coordinator issued.
    rounds: int = 0
    #: Grants carrying no cross-partition messages (the protocol's
    #: null-message count).
    null_messages: int = 0
    #: Cross-partition wire arrivals routed through the coordinator.
    wire_messages: int = 0
    #: Wall-clock nanoseconds partitions spent blocked on grants.
    horizon_stalls_ns: float = 0.0
    events_per_partition: Tuple[int, ...] = ()
    #: ``(max - min) / max`` of per-partition fired-event counts.
    partition_imbalance: float = 0.0

    def to_dict(self) -> dict:
        d = {f: getattr(self, f) for f in _INFO_FIELDS}
        d["events_per_partition"] = list(self.events_per_partition)
        return d


# ----------------------------------------------------------------------
# Ambient session (the ObsSession / FaultSession idiom)
# ----------------------------------------------------------------------
_active: Optional["PdesSession"] = None


class PdesSession:
    """Installs a :class:`PdesConfig` as ambient context.

    Every :class:`~repro.runtime.system.RuntimeSystem` constructed while
    the session is active picks the config up and routes :meth:`run`
    through :func:`run_partitioned`. Sessions nest; the innermost wins.
    The session also aggregates per-run outcomes for provenance.
    """

    def __init__(self, config: Optional[PdesConfig] = None) -> None:
        self.config = config if config is not None else PdesConfig()
        self.runs_partitioned = 0
        self.runs_sequential = 0
        self.fallback_reasons: Dict[str, int] = {}
        self._previous: Optional[PdesSession] = None

    def __enter__(self) -> "PdesSession":
        global _active
        self._previous = _active
        _active = self
        return self

    def __exit__(self, *exc: Any) -> None:
        global _active
        _active = self._previous
        self._previous = None

    def note(self, info: PdesRunInfo) -> None:
        """Record one run's outcome (called by :func:`run_partitioned`)."""
        if info.mode == "partitioned":
            self.runs_partitioned += 1
        else:
            self.runs_sequential += 1
            reason = info.fallback or "unknown"
            self.fallback_reasons[reason] = (
                self.fallback_reasons.get(reason, 0) + 1
            )

    def provenance_payload(self) -> dict:
        """Provenance block for harness artifacts (stripped from
        canonical bytes with the rest of the provenance)."""
        return {
            "sim_parallel": self.config.partitions,
            "runs_partitioned": self.runs_partitioned,
            "runs_sequential": self.runs_sequential,
            "fallback_reasons": dict(sorted(self.fallback_reasons.items())),
        }


def active_pdes_session() -> Optional[PdesSession]:
    """The innermost active :class:`PdesSession`, or ``None``."""
    return _active


# ----------------------------------------------------------------------
# Eligibility
# ----------------------------------------------------------------------
def _fallback_reason(rt: Any, until: Optional[float],
                     max_events: Optional[int]) -> Optional[str]:
    """Why ``rt`` cannot run partitioned right now (``None`` = it can)."""
    if until is not None or max_events is not None:
        return "bounded run (explicit until/max_events)"
    if rt.machine.nodes < 2:
        return "single simulated node"
    if min(rt.pdes.partitions, rt.machine.nodes) < 2:
        return "fewer than two partitions requested"
    if rt.faults is not None:
        return "fault fabric active"
    if rt.reliable is not None:
        return "reliability layer active"
    if rt.flow is not None:
        return "flow control active"
    if rt.timeline is not None:
        return "timeline recorder active"
    if rt.engine.tracer is not None:
        return "tracer active"
    if not rt._pdes_ready:
        return "app did not register pdes-mergeable state"
    if rt.costs.min_inter_node_latency_ns() <= 0:
        return "zero lookahead (alpha_inter_ns == 0)"
    if rt.engine._wheel.live_count:
        return "timer-wheel events armed before run"
    if not hasattr(os, "fork"):  # pragma: no cover - posix-only CI
        return "platform lacks fork()"
    return None


def _partition_nodes(n_nodes: int, n_parts: int) -> List[range]:
    """Contiguous node ranges, one per partition (balanced ±1)."""
    return [
        range(p * n_nodes // n_parts, (p + 1) * n_nodes // n_parts)
        for p in range(n_parts)
    ]


# ----------------------------------------------------------------------
# State snapshot / merge helpers
# ----------------------------------------------------------------------
def _numeric_items(obj: Any) -> Dict[str, Any]:
    """Mergeable int/float attributes of a plain stats-ish object."""
    if hasattr(obj, "__dict__"):
        src = vars(obj)
    else:
        src = {
            k: getattr(obj, k)
            for k in getattr(type(obj), "__slots__", ())
            if hasattr(obj, k)
        }
    return {k: v for k, v in src.items() if type(v) in (int, float)}


def _snapshot_sum_state(obj: Any) -> Any:
    """Pre-fork snapshot of a ``merge="sum"`` registration."""
    if isinstance(obj, np.ndarray):
        return obj.copy()
    if isinstance(obj, list):
        return list(obj)
    return _numeric_items(obj)


def _merge_sum_state(obj: Any, pre: Any, children: List[Any]) -> None:
    """Fold child deltas over the pre-fork snapshot, in partition order."""
    if isinstance(obj, np.ndarray):
        acc = pre.copy()
        for child in children:
            acc += child - pre
        obj[:] = acc
    elif isinstance(obj, list):
        for i, base in enumerate(pre):
            obj[i] = base + sum(child[i] - base for child in children)
    else:
        # ``children`` are the numeric dicts the partitions shipped back.
        for k, base in pre.items():
            delta = sum(child[k] - base for child in children)
            setattr(obj, k, base + delta)


def _scheme_ints(scheme: Any) -> Dict[str, int]:
    """The scheme's plain numeric counters (everything but ``latency``)."""
    items = _numeric_items(scheme.stats)
    return items


# ----------------------------------------------------------------------
# Child partition
# ----------------------------------------------------------------------
def _filter_foreign_events(engine: Any, owned: frozenset) -> None:
    """Drop pre-fork events not owned by this partition (in place, so
    the engine's heap alias stays valid)."""
    heap = engine._heap
    owner_of = engine.owner_of_seq
    heap[:] = [ev for ev in heap if ev[2] and owner_of(ev[1]) in owned]
    heapify(heap)
    engine._queue._corpses = 0


def _child_main(rt: Any, conn: Any, owned: frozenset, partition: int) -> None:
    """Run one partition to global quiescence under coordinator grants."""
    engine = rt.engine
    _filter_foreign_events(engine, owned)
    rt._pdes_local_nodes = owned

    out: List[Tuple[float, int, Any, int]] = []

    def export(arrival: float, seq: int, msg: Any, dst_node: int) -> None:
        out.append((arrival, seq, msg, dst_node))

    for node_id in owned:
        for nic in rt.node(node_id).nics:
            nic.pdes_export = export
            nic.pdes_owned = owned
    for obj, _rule in rt._pdes_states:
        if hasattr(obj, "strict"):
            # Partition-local books may legitimately consume more than
            # they produced; the merged parent counter re-checks.
            obj.strict = False

    fired = 0
    last_fire = 0.0
    stall_ns = 0.0
    conn.send(("ready", engine.peek_time(), [], 0))
    while True:
        t0 = _time.perf_counter()
        cmd = conn.recv()
        stall_ns += (_time.perf_counter() - t0) * 1e9
        op = cmd[0]
        if op == "advance":
            horizon, arrivals = cmd[1], cmd[2]
            for arrival, seq, msg, dst_node in arrivals:
                nic = rt.node(dst_node).nic_for_process(msg.dst_process)
                engine.inject_foreign(arrival, seq, nic.receive, (msg,))
            stats = engine.run(until=horizon)
            fired += stats.events_fired
            if stats.events_fired:
                last_fire = max(last_fire, stats.last_event_time)
            exports, out = out, []
            conn.send(("ready", engine.peek_time(), exports,
                       stats.events_fired))
        elif op == "finish":
            conn.send(("state", _child_bundle(
                rt, owned, partition, fired, last_fire, stall_ns
            )))
            return
        else:  # pragma: no cover - protocol guard
            raise SimulationError(f"unknown coordinator command {op!r}")


def _child_bundle(rt: Any, owned: frozenset, partition: int, fired: int,
                  last_fire: float, stall_ns: float) -> dict:
    """Everything the parent needs to graft this partition's state."""
    machine = rt.machine
    owned_workers = [
        w for n in owned for w in machine.workers_of_node(n)
    ]
    owned_procs = [
        p for n in owned for p in machine.processes_of_node(n)
    ]
    schemes = []
    for scheme in rt.schemes:
        stages = getattr(scheme, "stages", None)
        schemes.append({
            "ints": _scheme_ints(scheme),
            "latency": {
                n: scheme.stats.latency.shards[n] for n in owned
            },
            "stages": (
                None if stages is None
                else {n: stages.shards[n] for n in owned}
            ),
        })
    states = []
    for obj, rule in rt._pdes_states:
        if rule == "sum":
            states.append(_snapshot_sum_state(obj))
        else:  # "worker"
            states.append({w: obj[w] for w in owned_workers})
    return {
        "partition": partition,
        "fired": fired,
        "last_fire": last_fire,
        "stall_ns": stall_ns,
        "owner_seq": list(rt.engine._owner_seq),
        "fire_log": rt.engine.fire_log,
        "workers": {w: rt.worker(w).stats for w in owned_workers},
        "commthreads": {
            p: rt.process(p).commthread.stats
            for p in owned_procs
            if rt.process(p).commthread is not None
        },
        "nics": {
            n: [nic.stats for nic in rt.node(n).nics] for n in owned
        },
        "transport": rt.transport.stats.export(),
        "schemes": schemes,
        "states": states,
    }


# ----------------------------------------------------------------------
# Coordinator
# ----------------------------------------------------------------------
def _recv_checked(conn: Any, pid: int) -> tuple:
    msg = conn.recv()
    if msg[0] == "error":
        raise SimulationError(
            f"PDES partition (pid {pid}) failed:\n{msg[1]}"
        )
    return msg


def run_partitioned(
    rt: Any,
    *,
    until: Optional[float] = None,
    max_events: Optional[int] = None,
) -> RunStats:
    """Run ``rt`` to quiescence, sharded by simulated node.

    Falls back to the sequential engine (recording the reason in
    ``rt.pdes_info``) whenever the configuration is outside the
    conservative protocol's coverage. The merged result — clock, event
    counts, every component/scheme/app counter — is identical to what
    the sequential run would have produced.
    """
    lookahead = rt.costs.min_inter_node_latency_ns()
    session = active_pdes_session()
    if rt.engine.pending == 0:
        # Nothing scheduled (e.g. a second run() call): trivially done,
        # and not worth forking for. Keeps any earlier run's info.
        return rt.engine.run(until=until, max_events=max_events)
    reason = _fallback_reason(rt, until, max_events)
    if reason is not None:
        rt.pdes_info = PdesRunInfo(
            mode="sequential", partitions=1,
            lookahead_ns=lookahead, fallback=reason,
        )
        if session is not None:
            session.note(rt.pdes_info)
        return rt.engine.run(until=until, max_events=max_events)

    from multiprocessing.connection import Pipe

    machine = rt.machine
    n_parts = min(rt.pdes.partitions, machine.nodes)
    node_ranges = _partition_nodes(machine.nodes, n_parts)
    part_of_node = {
        n: p for p, rng in enumerate(node_ranges) for n in rng
    }

    # Pre-fork snapshots for delta merging.
    pre_transport = rt.transport.stats.export()
    pre_schemes = [_scheme_ints(s) for s in rt.schemes]
    pre_states = [
        _snapshot_sum_state(obj) if rule == "sum" else None
        for obj, rule in rt._pdes_states
    ]

    conns = []
    pids = []
    for p in range(n_parts):
        parent_conn, child_conn = Pipe()
        pid = os.fork()
        if pid == 0:
            parent_conn.close()
            try:
                _child_main(rt, child_conn, frozenset(node_ranges[p]), p)
                child_conn.close()
                os._exit(0)
            except BaseException:
                try:
                    child_conn.send(("error", traceback.format_exc()))
                except Exception:
                    pass
                os._exit(1)
        child_conn.close()
        conns.append(parent_conn)
        pids.append(pid)

    info = PdesRunInfo(
        mode="partitioned", partitions=n_parts, lookahead_ns=lookahead
    )
    try:
        next_times: List[Optional[float]] = []
        for p, conn in enumerate(conns):
            msg = _recv_checked(conn, pids[p])
            next_times.append(msg[1])
        pending: List[list] = [[] for _ in range(n_parts)]
        fired_per = [0] * n_parts
        while True:
            candidates = [t for t in next_times if t is not None]
            candidates.extend(
                m[0] for msgs in pending for m in msgs
            )
            if not candidates:
                break
            horizon = min(candidates) + lookahead
            info.rounds += 1
            for p, conn in enumerate(conns):
                if not pending[p]:
                    info.null_messages += 1
                conn.send(("advance", horizon, pending[p]))
                pending[p] = []
            for p, conn in enumerate(conns):
                _, nt, exports, n_fired = _recv_checked(conn, pids[p])
                next_times[p] = nt
                fired_per[p] += n_fired
                for exp in exports:
                    info.wire_messages += 1
                    pending[part_of_node[exp[3]]].append(exp)
        for conn in conns:
            conn.send(("finish",))
        bundles = [
            _recv_checked(conn, pids[p])[1] for p, conn in enumerate(conns)
        ]
    finally:
        for conn in conns:
            conn.close()
        for pid in pids:
            try:
                os.waitpid(pid, 0)
            except ChildProcessError:  # pragma: no cover
                pass

    stats = _merge(rt, bundles, pre_transport, pre_schemes, pre_states)
    info.events_per_partition = tuple(b["fired"] for b in bundles)
    info.horizon_stalls_ns = sum(b["stall_ns"] for b in bundles)
    peak = max(info.events_per_partition) if info.events_per_partition else 0
    if peak:
        info.partition_imbalance = (
            (peak - min(info.events_per_partition)) / peak
        )
    rt.pdes_info = info
    if session is not None:
        session.note(info)
    return stats


def _merge(rt: Any, bundles: List[dict], pre_transport: dict,
           pre_schemes: List[Dict[str, int]],
           pre_states: List[Any]) -> RunStats:
    """Graft the partitions' final state onto the parent runtime."""
    bundles = sorted(bundles, key=lambda b: b["partition"])
    engine = rt.engine

    for bundle in bundles:
        for wid, wstats in bundle["workers"].items():
            rt.worker(wid).stats = wstats
        for pid, cstats in bundle["commthreads"].items():
            rt.process(pid).commthread.stats = cstats
        for node_id, nic_stats in bundle["nics"].items():
            for nic, nstats in zip(rt.node(node_id).nics, nic_stats):
                nic.stats = nstats
        rt.transport.stats.absorb_delta(bundle["transport"], pre_transport)

    for i, scheme in enumerate(rt.schemes):
        pre = pre_schemes[i]
        merged = dict(pre)
        for bundle in bundles:
            child = bundle["schemes"][i]
            for key, base in pre.items():
                merged[key] += child["ints"][key] - base
            for node_id, shard in child["latency"].items():
                scheme.stats.latency.shards[node_id] = shard
            if child["stages"] is not None:
                for node_id, shard in child["stages"].items():
                    scheme.stages.shards[node_id] = shard
        for key, value in merged.items():
            setattr(scheme.stats, key, value)

    for i, (obj, rule) in enumerate(rt._pdes_states):
        if rule == "sum":
            _merge_sum_state(
                obj, pre_states[i], [b["states"][i] for b in bundles]
            )
        else:  # "worker"
            for bundle in bundles:
                for wid, element in bundle["states"][i].items():
                    obj[wid] = element

    # Owner counters: each slot advances in exactly one place (its
    # node's partition, or the wire-pair sender's partition), so the
    # per-slot max across children is that partition's final value.
    merged_seq = list(engine._owner_seq)
    for bundle in bundles:
        for slot, value in enumerate(bundle["owner_seq"]):
            if value > merged_seq[slot]:
                merged_seq[slot] = value
    engine._owner_seq = merged_seq

    if engine.fire_log is not None:
        logs = [b["fire_log"] or [] for b in bundles]
        engine.fire_log.extend(sorted(chain.from_iterable(logs)))

    # Every pre-fork event executed in some partition; drop the parent's
    # (stale) copies and land the clock on the last event actually fired.
    engine._heap.clear()
    engine._queue._corpses = 0
    last_fire = max((b["last_fire"] for b in bundles), default=engine.now)
    if last_fire > engine.now:
        engine.now = last_fire

    stats = RunStats()
    stats.events_fired = sum(b["fired"] for b in bundles)
    stats.end_time = engine.now
    stats.last_event_time = last_fire
    return stats
