"""Binary-heap event queue with stable ordering and lazy deletion.

A thin, well-tested wrapper over :mod:`heapq` that the engine owns. It
exists as its own module so the ordering/lazy-deletion invariants can be
unit- and property-tested in isolation (see ``tests/sim/test_queue.py``).
"""

from __future__ import annotations

import heapq
from typing import Optional

from repro.sim.event import Event


class EventQueue:
    """Min-heap of :class:`Event` ordered by ``(time, seq)``.

    Dead (cancelled) events are dropped lazily when they surface at the
    head; :attr:`live_count` tracks how many live events remain so that
    emptiness checks do not depend on the number of cancelled corpses in
    the heap.
    """

    __slots__ = ("_heap", "_live")

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._live = 0

    def push(self, event: Event) -> None:
        """Insert a live event. O(log n)."""
        heapq.heappush(self._heap, event)
        event.in_queue = True
        self._live += 1

    def note_cancelled(self) -> None:
        """Account for one event in the heap having been cancelled.

        The engine calls this when it cancels an event so that
        :attr:`live_count` stays exact; the corpse stays in the heap until
        it surfaces.
        """
        self._live -= 1

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest *live* event, or ``None``.

        Cancelled events encountered at the head are discarded.
        """
        heap = self._heap
        while heap:
            ev = heapq.heappop(heap)
            ev.in_queue = False
            if ev.alive:
                self._live -= 1
                return ev
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the earliest live event, or ``None`` if empty.

        Discards dead events at the head as a side effect.
        """
        heap = self._heap
        while heap:
            if heap[0].alive:
                return heap[0].time
            heapq.heappop(heap).in_queue = False
        return None

    @property
    def live_count(self) -> int:
        """Number of live (non-cancelled) events currently queued."""
        return self._live

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def compact(self) -> None:
        """Rebuild the heap dropping cancelled events.

        Optional maintenance; useful if a workload cancels vastly more
        events than it fires (e.g. per-item flush timers).
        """
        survivors = []
        for ev in self._heap:
            if ev.alive:
                survivors.append(ev)
            else:
                ev.in_queue = False
        self._heap = survivors
        heapq.heapify(self._heap)

    @property
    def raw_size(self) -> int:
        """Total heap entries including cancelled corpses (for tests)."""
        return len(self._heap)
