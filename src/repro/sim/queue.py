"""Binary-heap event queue with stable ordering, lazy deletion, and
corpse auto-compaction.

A thin wrapper over :mod:`heapq` that the engine owns. It exists as its
own module so the ordering/lazy-deletion invariants can be unit- and
property-tested in isolation (see ``tests/sim/test_queue.py``).

Events are the plain lists of :mod:`repro.sim.event`; the heap orders
them by their leading ``(time, seq)`` slots entirely in C. Liveness is
tracked by a *corpse counter* rather than per-event bookkeeping:
``live_count == len(heap) - corpses``.

Compaction is automatic: when cancelled corpses are both numerous
(``compact_min``) and at least half the heap, the heap is rebuilt
without them. Cancel-heavy workloads (per-buffer flush timers) used to
require calling :meth:`compact` by hand; now the cost is amortized O(1)
per cancel — after a rebuild, at least ``live_count`` further cancels
are needed before the ratio trips again.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Optional

from repro.sim.event import EV_STATE, EV_TIME, ST_CANCELLED

_heappush = heappush
_heappop = heappop


class EventQueue:
    """Min-heap of event lists ordered by ``(time, seq)``.

    Dead (cancelled) events are dropped lazily when they surface at the
    head or when auto-compaction trips; :attr:`live_count` stays exact
    throughout.
    """

    __slots__ = ("_heap", "_corpses", "compact_min")

    def __init__(self, compact_min: int = 256) -> None:
        self._heap: list = []
        #: Cancelled events still physically in the heap.
        self._corpses = 0
        #: Auto-compaction floor: never rebuild for fewer corpses.
        self.compact_min = compact_min

    def push(self, event: list) -> None:
        """Insert a live event. O(log n)."""
        _heappush(self._heap, event)

    def cancel(self, event: list) -> bool:
        """Cancel an event that lives in this heap. O(1) amortized.

        The corpse stays in the heap until it surfaces or compaction
        removes it. Returns False if the event was already dead.
        """
        if not event[EV_STATE]:
            return False
        event[EV_STATE] = ST_CANCELLED
        corpses = self._corpses + 1
        self._corpses = corpses
        if corpses >= self.compact_min and corpses * 2 >= len(self._heap):
            self.compact()
        return True

    def pop(self) -> Optional[list]:
        """Remove and return the earliest *live* event, or ``None``.

        Cancelled events encountered at the head are discarded.
        """
        heap = self._heap
        while heap:
            ev = _heappop(heap)
            if ev[EV_STATE]:
                return ev
            self._corpses -= 1
        return None

    def peek(self) -> Optional[list]:
        """The earliest live event without removing it, or ``None``.

        Discards dead events at the head as a side effect.
        """
        heap = self._heap
        while heap:
            ev = heap[0]
            if ev[EV_STATE]:
                return ev
            _heappop(heap)
            self._corpses -= 1
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the earliest live event, or ``None`` if empty."""
        ev = self.peek()
        return None if ev is None else ev[EV_TIME]

    @property
    def live_count(self) -> int:
        """Number of live (non-cancelled) events currently queued."""
        return len(self._heap) - self._corpses

    def __len__(self) -> int:
        return len(self._heap) - self._corpses

    def __bool__(self) -> bool:
        return len(self._heap) > self._corpses

    def compact(self) -> None:
        """Rebuild the heap dropping cancelled events.

        Runs automatically from :meth:`cancel` once corpses reach both
        ``compact_min`` and half of the heap; callable directly too.
        Rebuilds **in place** so aliases of the heap list (the engine
        keeps one for its scheduling fast path) stay valid.
        """
        heap = self._heap
        heap[:] = [ev for ev in heap if ev[EV_STATE]]
        heapify(heap)
        self._corpses = 0

    @property
    def raw_size(self) -> int:
        """Total heap entries including cancelled corpses (for tests)."""
        return len(self._heap)
