"""The discrete-event simulation engine.

The engine owns the simulated clock and two event sources it merges into
one deterministic stream:

* a binary heap (:class:`~repro.sim.queue.EventQueue`) for
  precise-ordering events — the default for :meth:`Engine.at` /
  :meth:`Engine.after` and the no-handle fast paths
  :meth:`Engine.call_at` / :meth:`Engine.call_after`;
* a hierarchical timer wheel (:class:`~repro.sim.wheel.TimerWheel`) for
  timeout-class events armed through :meth:`Engine.timer_at` /
  :meth:`Engine.timer_after` — flush timeouts, retransmit timers,
  credit-release timers — which are cancelled far more often than they
  fire and would otherwise bloat the heap with corpses.

Running to event-queue exhaustion is the simulator's notion of
*quiescence* — the applications in :mod:`repro.apps` are written so that
a finished run drains naturally (flush timers are one-shot and
conditional).

Determinism
-----------
Two runs with the same configuration and seeds execute the identical
event sequence: ties in firing time are broken by insertion order
(``seq``), and all randomness flows through
:class:`repro.sim.rng.RngStreams`. The wheel/heap split cannot reorder
anything: both sources surface their earliest live event and the engine
compares the two ``[time, seq, ...]`` lists directly, so the merged
stream is the exact ``(time, seq)`` total order regardless of which
structure an event waited in. ``tests/properties/test_prop_sim.py``
pins this with a randomized heap-only-vs-wheel equivalence test.

Partition-stable sequence numbers
---------------------------------
By default ``seq`` is a single global counter. A multi-owner engine
(:meth:`Engine.configure_owners`, used by multi-node runtimes) instead
allocates from per-owner counters and encodes the allocating slot into
the sequence number::

    seq = per_slot_counter * n_slots + slot

with one slot per owner (simulated node) plus one slot per *directed
owner pair* for cross-node wire events. Because each slot's counter
advances only from causally-local activity, a partitioned run
(:mod:`repro.sim.parallel`) allocates the exact same ``(time, seq)``
keys as the sequential run — which is what makes the conservative PDES
merge bit-for-bit identical. With a single owner the encoding collapses
to ``seq = counter`` — today's behavior, unchanged bit for bit.

Events are plain lists (see :mod:`repro.sim.event`): slot 2 is the
state, and the list itself is the cancellation handle.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import SchedulingError, SimulationError
from repro.sim.event import ST_CONSUMED, ST_PENDING, ST_POOLED, ST_WHEEL
from repro.sim.queue import EventQueue
from repro.sim.trace import Tracer
from repro.sim.wheel import TimerWheel

_heappush = heappush
_heappop = heappop

#: Upper bound on recycled event lists kept by the pool. Pooling only
#: pays off once the heap is deep enough to outgrow CPython's internal
#: list free-list; the cap bounds memory after a transient burst.
POOL_CAP = 4096


@dataclass
class RunStats:
    """Summary of one :meth:`Engine.run` call."""

    events_fired: int = 0
    end_time: float = 0.0
    stopped_early: bool = False
    horizon_reached: bool = False
    #: Time of the last event actually fired by this call (unlike
    #: ``end_time``, never advanced to an un-fired horizon).
    last_event_time: float = 0.0

    def merge(self, other: "RunStats") -> None:
        """Fold a subsequent run's stats into this one."""
        self.events_fired += other.events_fired
        self.end_time = max(self.end_time, other.end_time)
        self.stopped_early = self.stopped_early or other.stopped_early
        self.horizon_reached = self.horizon_reached or other.horizon_reached
        self.last_event_time = max(self.last_event_time, other.last_event_time)


class Engine:
    """Deterministic discrete-event engine.

    Parameters
    ----------
    tracer:
        Optional :class:`~repro.sim.trace.Tracer`; when provided, every
        fired event is recorded (category ``"event"``).
    """

    __slots__ = (
        "tracer",
        "now",
        "sampler",
        "fire_log",
        "current_owner",
        "_queue",
        "_wheel",
        "_heap",
        "_pool",
        "_owner_seq",
        "_n_owners",
        "_n_slots",
        "_owner_mod",
        "_running",
        "_stop_requested",
    )

    def __init__(self, tracer: Optional[Tracer] = None, now: float = 0.0) -> None:
        self.tracer = tracer
        #: Optional boundary sampler (a
        #: :class:`~repro.obs.timeline.TimelineRecorder`): before firing
        #: the first event at-or-past ``sampler.next_due``, the run loop
        #: calls ``sampler.on_boundary(t)``. Driving sampling from the
        #: event stream (rather than self-rescheduling sampler events)
        #: keeps run-to-exhaustion quiescence intact and adds only one
        #: float compare per event.
        self.sampler: Optional[Any] = None
        #: Optional list collecting ``(time, seq)`` of every fired event
        #: (forces the general run loop; used by the PDES equivalence
        #: property tests).
        self.fire_log: Optional[List[Tuple[float, int]]] = None
        #: Owner slot of the event currently firing (multi-owner engines
        #: only; stays 0 otherwise). Events scheduled from inside a
        #: callback are allocated under this owner.
        self.current_owner = 0
        self.now = now
        self._queue = EventQueue()
        self._wheel = TimerWheel()
        #: Alias of the queue's heap list; EventQueue.compact() rebuilds
        #: it in place so this alias never goes stale.
        self._heap = self._queue._heap
        self._pool: list = []
        self._n_owners = 1
        self._n_slots = 1
        #: 0 disables per-event owner decoding (single-owner engines);
        #: equals ``_n_slots`` otherwise.
        self._owner_mod = 0
        self._owner_seq = [0]
        self._running = False
        self._stop_requested = False

    # ------------------------------------------------------------------
    # Owner configuration (multi-node runtimes)
    # ------------------------------------------------------------------
    def configure_owners(self, n_owners: int) -> None:
        """Switch to partition-stable seq allocation over ``n_owners``.

        Must be called before anything is scheduled. Slots ``0..n-1``
        are per-owner counters; slot ``n + src*n + dst`` orders the
        directed cross-owner wire channel ``src -> dst``. With
        ``n_owners == 1`` the engine stays on the plain global counter.
        """
        if n_owners < 1:
            raise SimulationError(f"n_owners must be >= 1, got {n_owners}")
        if self.pending or any(self._owner_seq):
            raise SimulationError(
                "configure_owners() must run before any event is scheduled"
            )
        self._n_owners = n_owners
        self._n_slots = 1 if n_owners == 1 else n_owners + n_owners * n_owners
        self._owner_mod = 0 if n_owners == 1 else self._n_slots
        self._owner_seq = [0] * self._n_slots
        self.current_owner = 0

    def owner_of_seq(self, seq: int) -> int:
        """Owner that executes the event carrying ``seq`` (wire events
        belong to their destination owner)."""
        mod = self._owner_mod
        if not mod:
            return 0
        n = self._n_owners
        slot = seq % mod
        return slot if slot < n else (slot - n) % n

    # ------------------------------------------------------------------
    # Scheduling — precise-ordering heap
    # ------------------------------------------------------------------
    def _alloc_seq(self) -> int:
        cur = self.current_owner
        seqs = self._owner_seq
        oseq = seqs[cur]
        seqs[cur] = oseq + 1
        return oseq * self._n_slots + cur

    def at(self, time: float, fn: Callable[..., Any], *args: Any) -> list:
        """Schedule ``fn(*args)`` at absolute simulated time ``time``.

        Returns the event list, usable as a :meth:`cancel` handle.

        Raises
        ------
        SchedulingError
            If ``time`` is in the past (strictly before ``now``).
        """
        if time < self.now:
            raise SchedulingError(
                f"cannot schedule at t={time} (now={self.now}): time is in the past"
            )
        cur = self.current_owner
        seqs = self._owner_seq
        oseq = seqs[cur]
        seqs[cur] = oseq + 1
        ev = [time, oseq * self._n_slots + cur, ST_PENDING, fn, args]
        _heappush(self._heap, ev)
        return ev

    def after(self, delay: float, fn: Callable[..., Any], *args: Any) -> list:
        """Schedule ``fn(*args)`` ``delay`` ns from the current time."""
        if delay < 0:
            raise SchedulingError(f"negative delay {delay}")
        cur = self.current_owner
        seqs = self._owner_seq
        oseq = seqs[cur]
        seqs[cur] = oseq + 1
        ev = [self.now + delay, oseq * self._n_slots + cur, ST_PENDING, fn, args]
        _heappush(self._heap, ev)
        return ev

    def call_at(self, time: float, fn: Callable[..., Any], args: tuple = ()) -> None:
        """No-handle fast path: like :meth:`at` but skips the past-time
        check (callers pass times derived from ``now`` plus non-negative
        costs) and returns nothing, so the event list can be recycled
        through the pool after it fires. Use for internal fire-and-forget
        scheduling on hot paths; anything that might be cancelled needs
        :meth:`at` or :meth:`timer_at`."""
        cur = self.current_owner
        seqs = self._owner_seq
        oseq = seqs[cur]
        seqs[cur] = oseq + 1
        seq = oseq * self._n_slots + cur
        pool = self._pool
        if pool:
            ev = pool.pop()
            ev[0] = time
            ev[1] = seq
            ev[2] = ST_POOLED
            ev[3] = fn
            ev[4] = args
        else:
            ev = [time, seq, ST_POOLED, fn, args]
        _heappush(self._heap, ev)

    def call_after(self, delay: float, fn: Callable[..., Any], args: tuple = ()) -> None:
        """No-handle fast path twin of :meth:`after` (delay must be >= 0,
        unchecked)."""
        cur = self.current_owner
        seqs = self._owner_seq
        oseq = seqs[cur]
        seqs[cur] = oseq + 1
        seq = oseq * self._n_slots + cur
        pool = self._pool
        if pool:
            ev = pool.pop()
            ev[0] = self.now + delay
            ev[1] = seq
            ev[2] = ST_POOLED
            ev[3] = fn
            ev[4] = args
        else:
            ev = [self.now + delay, seq, ST_POOLED, fn, args]
        _heappush(self._heap, ev)

    # ------------------------------------------------------------------
    # Scheduling — cross-owner wire channels
    # ------------------------------------------------------------------
    def wire_seq(self, src_owner: int, dst_owner: int) -> int:
        """Allocate a seq on the ordered ``src -> dst`` wire channel.

        Wire events are *executed* by their destination owner but their
        allocation order depends only on the sender, so the counter
        lives in a dedicated per-pair slot that both the sequential
        engine and the sender's partition advance identically.
        """
        n = self._n_owners
        slot = n + src_owner * n + dst_owner
        seqs = self._owner_seq
        oseq = seqs[slot]
        seqs[slot] = oseq + 1
        return oseq * self._n_slots + slot

    def wire_call_at(
        self,
        time: float,
        fn: Callable[..., Any],
        args: tuple,
        src_owner: int,
        dst_owner: int,
    ) -> None:
        """:meth:`call_at` on the ``src -> dst`` wire channel.

        Falls back to :meth:`call_at` on single-owner engines (no pair
        slots exist, and none are needed).
        """
        if not self._owner_mod:
            self.call_at(time, fn, args)
            return
        seq = self.wire_seq(src_owner, dst_owner)
        pool = self._pool
        if pool:
            ev = pool.pop()
            ev[0] = time
            ev[1] = seq
            ev[2] = ST_POOLED
            ev[3] = fn
            ev[4] = args
        else:
            ev = [time, seq, ST_POOLED, fn, args]
        _heappush(self._heap, ev)

    def inject_foreign(
        self, time: float, seq: int, fn: Callable[..., Any], args: tuple = ()
    ) -> None:
        """Insert an event whose ``(time, seq)`` key was allocated by a
        peer partition (a cross-partition wire arrival). The key is used
        verbatim so the merged order matches the sequential engine."""
        _heappush(self._heap, [time, seq, ST_POOLED, fn, args])

    # ------------------------------------------------------------------
    # Scheduling — timer wheel (timeout-class events)
    # ------------------------------------------------------------------
    def timer_at(self, time: float, fn: Callable[..., Any], *args: Any) -> list:
        """Arm a timeout at absolute time ``time``; O(1) arm and cancel.

        Identical observable semantics to :meth:`at` — the wheel and the
        heap are merged in exact ``(time, seq)`` order — but backed by
        the timer wheel, which is the right home for events that are
        usually cancelled before they fire."""
        if time < self.now:
            raise SchedulingError(
                f"cannot schedule at t={time} (now={self.now}): time is in the past"
            )
        cur = self.current_owner
        seqs = self._owner_seq
        oseq = seqs[cur]
        seqs[cur] = oseq + 1
        ev = [time, oseq * self._n_slots + cur, ST_WHEEL, fn, args]
        self._wheel.push(ev)
        return ev

    def timer_after(self, delay: float, fn: Callable[..., Any], *args: Any) -> list:
        """Arm a timeout ``delay`` ns from now (see :meth:`timer_at`)."""
        if delay < 0:
            raise SchedulingError(f"negative delay {delay}")
        cur = self.current_owner
        seqs = self._owner_seq
        oseq = seqs[cur]
        seqs[cur] = oseq + 1
        ev = [self.now + delay, oseq * self._n_slots + cur, ST_WHEEL, fn, args]
        self._wheel.push(ev)
        return ev

    # ------------------------------------------------------------------
    # Cancellation
    # ------------------------------------------------------------------
    def cancel(self, event: list) -> None:
        """Cancel a scheduled event. O(1) amortized.

        Safe no-op if the event already fired or was cancelled. Handles
        stay valid across run horizons: :meth:`run` never removes an
        event it does not fire, so a handle scheduled beyond ``until``
        still cancels the real queued event."""
        state = event[2]
        if state == ST_PENDING or state == ST_POOLED:
            self._queue.cancel(event)
        elif state == ST_WHEEL:
            self._wheel.cancel(event)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of live events waiting to fire (heap + wheel)."""
        return self._queue.live_count + self._wheel.live_count

    def peek_time(self) -> Optional[float]:
        """Firing time of the next live event, or ``None``."""
        qt = self._queue.peek_time()
        wt = self._wheel.peek_time()
        if qt is None:
            return wt
        if wt is None:
            return qt
        return qt if qt <= wt else wt

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run(
        self,
        *,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> RunStats:
        """Process events until exhaustion, a horizon, or :meth:`stop`.

        Parameters
        ----------
        until:
            If given, fire events *strictly before* this time and stop;
            the clock is advanced to ``until``. An event scheduled
            exactly at the horizon is deferred — it belongs to the next
            ``run()`` call. (This strict semantics makes ``until`` a
            composable window boundary: successive calls with
            ``until=h1, h2, ...`` fire each event exactly once, in the
            window ``[h_{k-1}, h_k)`` that contains it — the property
            the partitioned engine of :mod:`repro.sim.parallel` builds
            on.) Deferred events are *not* popped — they stay queued, so
            their handles remain valid and a later :meth:`run` call
            fires them.
        max_events:
            Safety valve for tests: abort with :class:`SimulationError`
            after this many events (catches accidental infinite loops).

        Returns
        -------
        RunStats
            Count of fired events and the final clock value.
        """
        if self._running:
            raise SimulationError("Engine.run() is not reentrant")
        self._running = True
        self._stop_requested = False
        stats = RunStats()
        stats.last_event_time = self.now
        try:
            if (
                max_events is None
                and self.tracer is None
                and self.fire_log is None
            ):
                if until is None:
                    if self.sampler is None:
                        self._run_fast(stats)
                    else:
                        self._run_sampled(stats)
                elif self.sampler is None:
                    self._run_until(stats, until)
                else:
                    self._run_general(stats, until, None)
            else:
                self._run_general(stats, until, max_events)
        finally:
            self._running = False
        stats.end_time = self.now
        return stats

    def _run_fast(self, stats: RunStats) -> None:
        """Unobserved full run: the simulator's hot loop.

        When the head event comes from the wheel, any further wheel
        events at the *same timestamp* that still precede the heap head
        are applied as a batched cohort without re-entering the merge
        loop — flush-timer coalescing produces exactly these dense
        same-deadline bursts. The cohort fires the identical events in
        the identical ``(time, seq)`` order the plain loop would:
        cohort members were armed before anything a fired callback can
        schedule now (so their seqs are smaller), and the cached heap
        head bounds everything that was already queued.
        """
        queue = self._queue
        heap = self._heap
        wheel = self._wheel
        pool = self._pool
        mod = self._owner_mod
        nown = self._n_owners
        fired = 0
        while not self._stop_requested:
            hev = None
            from_wheel = False
            if wheel._live:
                wev = wheel.peek()
                hev = queue.peek()
                if hev is None or wev < hev:
                    ev = wheel.pop()
                    from_wheel = True
                else:
                    ev = _heappop(heap)
            else:
                # Heap-only fast path: skim corpses inline.
                while heap:
                    ev = _heappop(heap)
                    if ev[2]:
                        break
                    queue._corpses -= 1
                else:
                    break
            state = ev[2]
            t = ev[0]
            self.now = t
            if mod:
                slot = ev[1] % mod
                self.current_owner = slot if slot < nown else (slot - nown) % nown
            fired += 1
            ev[2] = ST_CONSUMED
            ev[3](*ev[4])
            if state == ST_POOLED and len(pool) < POOL_CAP:
                pool.append(ev)
            if from_wheel:
                # Same-timestamp wheel cohort (see docstring).
                cur = wheel._current
                while cur and not self._stop_requested:
                    head = cur[0]
                    if head[2] != ST_WHEEL:
                        _heappop(cur)
                        wheel._dead -= 1
                        continue
                    if head[0] != t or (hev is not None and hev < head):
                        break
                    wheel._live -= 1
                    ev = _heappop(cur)
                    if mod:
                        slot = ev[1] % mod
                        self.current_owner = (
                            slot if slot < nown else (slot - nown) % nown
                        )
                    fired += 1
                    ev[2] = ST_CONSUMED
                    ev[3](*ev[4])
        else:
            stats.stopped_early = True
        stats.events_fired = fired
        stats.last_event_time = self.now

    def _run_sampled(self, stats: RunStats) -> None:
        """Full run with a boundary sampler: :meth:`_run_fast` plus one
        ``t >= next_due`` compare per event. Kept as a separate loop so
        the sampler-less hot path stays untouched (the obs-overhead
        bench guards both)."""
        queue = self._queue
        heap = self._heap
        wheel = self._wheel
        pool = self._pool
        sampler = self.sampler
        mod = self._owner_mod
        nown = self._n_owners
        next_due = sampler.next_due
        fired = 0
        while not self._stop_requested:
            if wheel._live:
                wev = wheel.peek()
                hev = queue.peek()
                if hev is None or wev < hev:
                    ev = wheel.pop()
                else:
                    ev = _heappop(heap)
            else:
                while heap:
                    ev = _heappop(heap)
                    if ev[2]:
                        break
                    queue._corpses -= 1
                else:
                    break
            state = ev[2]
            t = ev[0]
            if t >= next_due:
                # Sample state-at-boundary before the crossing event
                # fires; all applied events are strictly earlier.
                next_due = sampler.on_boundary(t)
            self.now = t
            if mod:
                slot = ev[1] % mod
                self.current_owner = slot if slot < nown else (slot - nown) % nown
            fired += 1
            ev[2] = ST_CONSUMED
            ev[3](*ev[4])
            if state == ST_POOLED and len(pool) < POOL_CAP:
                pool.append(ev)
        else:
            stats.stopped_early = True
        stats.events_fired = fired
        stats.last_event_time = self.now

    def _run_until(self, stats: RunStats, until: float) -> None:
        """Horizon-bounded run without tracing/sampling: the partition
        window primitive. Fires events with ``t < until`` (strictly),
        then advances the clock to ``until``. Peeks before popping so a
        deferred event is never removed — handles stay valid across
        successive horizons."""
        queue = self._queue
        heap = self._heap
        wheel = self._wheel
        pool = self._pool
        mod = self._owner_mod
        nown = self._n_owners
        fired = 0
        while not self._stop_requested:
            from_wheel = False
            if wheel._live:
                wev = wheel.peek()
                hev = queue.peek()
                if hev is None or wev < hev:
                    ev = wev
                    from_wheel = True
                else:
                    ev = hev
            else:
                ev = queue.peek()
                if ev is None:
                    break
            t = ev[0]
            if t >= until:
                # It belongs to a later run() call; leave it in place.
                stats.horizon_reached = True
                break
            if from_wheel:
                wheel.pop()
            else:
                _heappop(heap)
            state = ev[2]
            self.now = t
            if mod:
                slot = ev[1] % mod
                self.current_owner = slot if slot < nown else (slot - nown) % nown
            fired += 1
            ev[2] = ST_CONSUMED
            ev[3](*ev[4])
            if state == ST_POOLED and len(pool) < POOL_CAP:
                pool.append(ev)
        else:
            stats.stopped_early = True
        stats.events_fired = fired
        stats.last_event_time = self.now
        if stats.horizon_reached and self.now < until:
            # A deferred event exists; park the clock at the window edge.
            self.now = until

    def _run_general(
        self, stats: RunStats, until: Optional[float], max_events: Optional[int]
    ) -> None:
        """Run with horizon / max-events / tracing / sampling / fire
        logging. Peeks before popping so an event beyond the horizon is
        never removed — that is what keeps cancel handles valid across
        successive horizons."""
        queue = self._queue
        heap = self._heap
        wheel = self._wheel
        pool = self._pool
        tracer = self.tracer
        sampler = self.sampler
        fire_log = self.fire_log
        mod = self._owner_mod
        nown = self._n_owners
        next_due = sampler.next_due if sampler is not None else None
        fired = 0
        while True:
            if self._stop_requested:
                stats.stopped_early = True
                break
            from_wheel = False
            if wheel._live:
                wev = wheel.peek()
                hev = queue.peek()
                if hev is None or wev < hev:
                    ev = wev
                    from_wheel = True
                else:
                    ev = hev
            else:
                ev = queue.peek()
                if ev is None:
                    break
            t = ev[0]
            if until is not None and t >= until:
                # It belongs to a later run() call; leave it in place.
                stats.horizon_reached = True
                break
            if from_wheel:
                wheel.pop()
            else:
                _heappop(heap)
            if next_due is not None and t >= next_due:
                # Sample state-at-boundary before the crossing event
                # fires; all applied events are strictly earlier.
                next_due = sampler.on_boundary(t)
            if t < self.now:  # pragma: no cover - invariant guard
                raise SimulationError(
                    f"time went backwards: event at {t}, now {self.now}"
                )
            self.now = t
            if mod:
                slot = ev[1] % mod
                self.current_owner = slot if slot < nown else (slot - nown) % nown
            fired += 1
            if max_events is not None and fired > max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events}; probable runaway loop"
                )
            if tracer is not None and tracer.wants("event"):
                tracer.record(
                    "event", t=t, fn=getattr(ev[3], "__qualname__", "?")
                )
            if fire_log is not None:
                fire_log.append((t, ev[1]))
            state = ev[2]
            ev[2] = ST_CONSUMED
            ev[3](*ev[4])
            if state == ST_POOLED and len(pool) < POOL_CAP:
                pool.append(ev)
        stats.events_fired = fired
        stats.last_event_time = self.now
        if stats.horizon_reached and until is not None and self.now < until:
            self.now = until

    def stop(self) -> None:
        """Request the current :meth:`run` loop to stop after this event."""
        self._stop_requested = True

    def reset(self) -> None:
        """Clear the queue and rewind the clock (for test reuse)."""
        if self._running:
            raise SimulationError("cannot reset a running engine")
        self._queue = EventQueue()
        self._heap = self._queue._heap
        self._wheel = TimerWheel()
        self._pool = []
        self.now = 0.0
        self._owner_seq = [0] * self._n_slots
        self.current_owner = 0
        self._stop_requested = False
