"""The discrete-event simulation engine.

The engine owns the simulated clock and the event queue. Components
schedule callbacks with :meth:`Engine.at` / :meth:`Engine.after`; the
callbacks mutate component state and schedule further events. Running to
event-queue exhaustion is the simulator's notion of *quiescence* — the
applications in :mod:`repro.apps` are written so that a finished run
drains naturally (flush timers are one-shot and conditional).

Determinism
-----------
Two runs with the same configuration and seeds execute the identical
event sequence: ties in firing time are broken by insertion order, and
all randomness flows through :class:`repro.sim.rng.RngStreams`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.errors import SchedulingError, SimulationError
from repro.sim.event import Event
from repro.sim.queue import EventQueue
from repro.sim.trace import Tracer


@dataclass
class RunStats:
    """Summary of one :meth:`Engine.run` call."""

    events_fired: int = 0
    end_time: float = 0.0
    stopped_early: bool = False
    horizon_reached: bool = False

    def merge(self, other: "RunStats") -> None:
        """Fold a subsequent run's stats into this one."""
        self.events_fired += other.events_fired
        self.end_time = max(self.end_time, other.end_time)
        self.stopped_early = self.stopped_early or other.stopped_early
        self.horizon_reached = self.horizon_reached or other.horizon_reached


@dataclass
class Engine:
    """Deterministic discrete-event engine.

    Parameters
    ----------
    tracer:
        Optional :class:`~repro.sim.trace.Tracer`; when provided, every
        fired event is recorded (category ``"event"``).
    """

    tracer: Optional[Tracer] = None
    now: float = 0.0
    _queue: EventQueue = field(default_factory=EventQueue, repr=False)
    _seq: int = 0
    _running: bool = False
    _stop_requested: bool = False

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulated time ``time``.

        Raises
        ------
        SchedulingError
            If ``time`` is in the past (strictly before ``now``).
        """
        if time < self.now:
            raise SchedulingError(
                f"cannot schedule at t={time} (now={self.now}): time is in the past"
            )
        ev = Event(time, self._seq, fn, args)
        self._seq += 1
        self._queue.push(ev)
        return ev

    def after(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` ``delay`` ns from the current time."""
        if delay < 0:
            raise SchedulingError(f"negative delay {delay}")
        return self.at(self.now + delay, fn, *args)

    def cancel(self, event: Event) -> None:
        """Cancel a scheduled event.

        Safe no-op if the event already fired, was cancelled, or was
        requeued past a run horizon (handles do not survive horizon
        requeueing — the copy will still fire).
        """
        if event.alive:
            event.cancel()
            if event.in_queue:
                self._queue.note_cancelled()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of live events waiting to fire."""
        return self._queue.live_count

    def peek_time(self) -> Optional[float]:
        """Firing time of the next live event, or ``None``."""
        return self._queue.peek_time()

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run(
        self,
        *,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> RunStats:
        """Process events until exhaustion, a horizon, or :meth:`stop`.

        Parameters
        ----------
        until:
            If given, stop once the next event would fire strictly after
            this time; the clock is advanced to ``until``.
        max_events:
            Safety valve for tests: abort with :class:`SimulationError`
            after this many events (catches accidental infinite loops).

        Returns
        -------
        RunStats
            Count of fired events and the final clock value.
        """
        if self._running:
            raise SimulationError("Engine.run() is not reentrant")
        self._running = True
        self._stop_requested = False
        stats = RunStats()
        queue = self._queue
        tracer = self.tracer
        try:
            while True:
                if self._stop_requested:
                    stats.stopped_early = True
                    break
                ev = queue.pop()
                if ev is None:
                    break
                if until is not None and ev.time > until:
                    # Put it back: it belongs to a later run() call.
                    ev_copy = Event(ev.time, ev.seq, ev.fn, ev.args)
                    queue.push(ev_copy)
                    self.now = until
                    stats.horizon_reached = True
                    break
                if ev.time < self.now:  # pragma: no cover - invariant guard
                    raise SimulationError(
                        f"time went backwards: event at {ev.time}, now {self.now}"
                    )
                self.now = ev.time
                stats.events_fired += 1
                if max_events is not None and stats.events_fired > max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; probable runaway loop"
                    )
                if tracer is not None and tracer.wants("event"):
                    tracer.record(
                        "event", t=self.now, fn=getattr(ev.fn, "__qualname__", "?")
                    )
                ev.fn(*ev.args)
        finally:
            self._running = False
        stats.end_time = self.now
        return stats

    def stop(self) -> None:
        """Request the current :meth:`run` loop to stop after this event."""
        self._stop_requested = True

    def reset(self) -> None:
        """Clear the queue and rewind the clock (for test reuse)."""
        if self._running:
            raise SimulationError("cannot reset a running engine")
        self._queue = EventQueue()
        self.now = 0.0
        self._seq = 0
        self._stop_requested = False
