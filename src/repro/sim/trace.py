"""Structured simulation tracing.

Tracing is off by default (it is on the hot path); benchmarks never
enable it. Tests and the examples use it to assert event orderings and to
show what the simulator is doing.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Iterable, Optional, Tuple


class Tracer:
    """Bounded in-memory trace of categorized records.

    Parameters
    ----------
    categories:
        Categories to capture; ``None`` captures everything. Common
        categories used by the library: ``"event"``, ``"send"``,
        ``"recv"``, ``"flush"``, ``"nic"``, ``"commthread"``.
    capacity:
        Maximum retained records (oldest evicted first).
    """

    def __init__(
        self,
        categories: Optional[Iterable[str]] = None,
        capacity: int = 100_000,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._categories = frozenset(categories) if categories is not None else None
        self._records: Deque[Tuple[str, Dict[str, Any]]] = deque(maxlen=capacity)
        self.dropped = 0

    def wants(self, category: str) -> bool:
        """Whether records of ``category`` would be captured."""
        return self._categories is None or category in self._categories

    def record(self, category: str, **fields: Any) -> None:
        """Capture one record if the category is enabled."""
        if not self.wants(category):
            return
        if len(self._records) == self._records.maxlen:
            self.dropped += 1
        self._records.append((category, fields))

    def records(self, category: Optional[str] = None) -> list:
        """Return captured records, optionally filtered by category."""
        if category is None:
            return list(self._records)
        return [(c, f) for c, f in self._records if c == category]

    def count(self, category: str) -> int:
        """Number of captured records in ``category``."""
        return sum(1 for c, _ in self._records if c == category)

    def clear(self) -> None:
        """Drop all captured records."""
        self._records.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._records)
