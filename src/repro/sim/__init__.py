"""Deterministic discrete-event simulation (DES) substrate.

This package is the foundation of the whole reproduction: simulated time
replaces wall-clock time, so all performance claims are made about the
*model* rather than about the Python interpreter (see DESIGN.md §2).

Public surface
--------------
:class:`~repro.sim.engine.Engine`
    The event loop: schedule callbacks at absolute or relative simulated
    times (heap-ordered ``at``/``after``, no-handle ``call_at`` /
    ``call_after``, wheel-backed ``timer_at``/``timer_after``), run to
    exhaustion or to a horizon.
:func:`~repro.sim.event.Event`
    Factory for a cancellable scheduled callback (a plain list; see
    :mod:`repro.sim.event` for the representation).
:class:`~repro.sim.wheel.TimerWheel`
    O(1) arm/cancel structure for timeout-class events.
:class:`~repro.sim.rng.RngStreams`
    Named, independently-seeded ``numpy`` generator streams so that every
    component draws from its own reproducible stream.
:mod:`~repro.sim.simtime`
    Time-unit constants (nanosecond base) and formatting helpers.
:class:`~repro.sim.trace.Tracer`
    Optional structured event tracing.
"""

from repro.sim.engine import Engine, RunStats
from repro.sim.event import Event
from repro.sim.queue import EventQueue
from repro.sim.rng import RngStreams
from repro.sim.simtime import MS, NS, SEC, US, fmt_time
from repro.sim.trace import Tracer
from repro.sim.wheel import TimerWheel

__all__ = [
    "Engine",
    "Event",
    "EventQueue",
    "MS",
    "NS",
    "RngStreams",
    "RunStats",
    "SEC",
    "Tracer",
    "TimerWheel",
    "US",
    "fmt_time",
]
