"""Deterministic discrete-event simulation (DES) substrate.

This package is the foundation of the whole reproduction: simulated time
replaces wall-clock time, so all performance claims are made about the
*model* rather than about the Python interpreter (see DESIGN.md §2).

Public surface
--------------
:class:`~repro.sim.engine.Engine`
    The event loop: schedule callbacks at absolute or relative simulated
    times, run to exhaustion or to a horizon.
:class:`~repro.sim.event.Event`
    A cancellable scheduled callback.
:class:`~repro.sim.rng.RngStreams`
    Named, independently-seeded ``numpy`` generator streams so that every
    component draws from its own reproducible stream.
:mod:`~repro.sim.simtime`
    Time-unit constants (nanosecond base) and formatting helpers.
:class:`~repro.sim.trace.Tracer`
    Optional structured event tracing.
"""

from repro.sim.engine import Engine, RunStats
from repro.sim.event import Event
from repro.sim.queue import EventQueue
from repro.sim.rng import RngStreams
from repro.sim.simtime import MS, NS, SEC, US, fmt_time
from repro.sim.trace import Tracer

__all__ = [
    "Engine",
    "Event",
    "EventQueue",
    "MS",
    "NS",
    "RngStreams",
    "RunStats",
    "SEC",
    "Tracer",
    "US",
    "fmt_time",
]
