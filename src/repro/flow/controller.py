"""The runtime-attached flow controller.

One :class:`FlowController` per runtime (``rt.flow``; ``None`` when the
feature is off) owns one :class:`~repro.flow.credit.CreditGate` per
comm thread (SMP) and per NIC, and implements the four mechanisms of the
flow subsystem:

* **credit-based admission** — the transport routes every outbound
  message through :meth:`submit_ct` / :meth:`submit_nic` instead of
  booking the server directly; messages over the caps park in gate
  order and are admitted as earlier messages finish service.
  Retransmitted copies re-enter the transport like any send, so
  recovery traffic respects the same credits and cannot amplify
  overload. ``rel.ack`` control messages bypass the gates — stalling
  the ack path would only provoke more retransmits.
* **backpressure propagation** — while a worker's source gate is
  congested, the TramLib schemes charge the producing task a bounded
  CPU stall (:meth:`source_stall_ns`) instead of growing queues, and
  non-full flushes are deferred (:meth:`defer_flush`) until credits
  return. Parked wire time is attributed to the ``bp_stall`` span
  stage, keeping the stage-partition identity.
* **overload detection** — backlog beyond
  ``FlowConfig.overload_backlog_ns`` (or any parked message) escalates
  every attached scheme once (flush-timer stretch + buffer growth);
  the condition clears with hysteresis at ``clear_backlog_ns``.
* **load shedding** — past ``shed_backlog_ns``, unprotected messages
  to a destination whose parked budget is exhausted are destroyed and
  counted; the drop feeds loss-aware quiescence accounting via the
  ``on_loss`` hook (installed by ``rt.wire_loss_accounting``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

from repro.flow.config import FlowConfig
from repro.flow.credit import CreditGate, ParkedMessage

if TYPE_CHECKING:  # pragma: no cover
    from repro.network.message import NetMessage
    from repro.network.nic import Nic
    from repro.runtime.commthread import CommThread
    from repro.runtime.system import RuntimeSystem

#: Control-plane message kinds that bypass credit gates (values match
#: ``repro.runtime.reliability.CONTROL_KINDS``; kept as literals to
#: avoid an import cycle through the runtime package). Probes must not
#: park: a liveness question stuck behind backpressure would convert
#: congestion into a false death verdict.
_CONTROL_KINDS = frozenset({"rel.ack", "rel.probe"})


@dataclass
class FlowStats:
    """Aggregate flow-control counters for one runtime."""

    messages_admitted: int = 0
    messages_parked: int = 0
    messages_shed: int = 0
    items_shed: int = 0
    bytes_shed: int = 0
    park_wait_ns: float = 0.0
    source_stalls: int = 0
    source_stall_ns: float = 0.0
    flush_deferrals: int = 0
    overload_escalations: int = 0
    overload_clears: int = 0

    def to_dict(self) -> dict:
        return {
            "messages_admitted": self.messages_admitted,
            "messages_parked": self.messages_parked,
            "messages_shed": self.messages_shed,
            "items_shed": self.items_shed,
            "bytes_shed": self.bytes_shed,
            "park_wait_ns": self.park_wait_ns,
            "source_stalls": self.source_stalls,
            "source_stall_ns": self.source_stall_ns,
            "flush_deferrals": self.flush_deferrals,
            "overload_escalations": self.overload_escalations,
            "overload_clears": self.overload_clears,
        }


def _payload_items(msg: "NetMessage") -> int:
    """Item count of an aggregated payload (0 for control messages)."""
    return int(getattr(msg.payload, "count", 0) or 0)


def conservation_ledger(rt: "RuntimeSystem") -> dict:
    """Item-conservation ledger for any runtime, flow or not.

    ``produced == delivered + shed + lost + abandoned + buffered +
    parked`` whenever the accounting is closable — plus a
    ``lost_to_crash`` term reported only when the crash fabric is armed,
    so crash-free artifacts are unchanged. Without a flow controller the
    shed/parked terms are zero. ``balanced`` is ``None`` when
    duplication faults run without the reliability layer (duplicates
    deliver twice, so no conservation identity exists), a bool
    otherwise.
    """
    produced = sum(s.stats.items_inserted for s in rt.schemes)
    delivered = sum(s.stats.items_delivered for s in rt.schemes)
    buffered = sum(s.pending_items() for s in rt.schemes)
    parked = rt.flow.parked_items() if rt.flow is not None else 0
    shed = rt.flow.stats.items_shed if rt.flow is not None else 0
    lost = rt.faults.stats.items_lost if rt.faults is not None else 0
    lost_to_crash = (
        rt.faults.stats.items_lost_to_crash
        if rt.dead_procs is not None and rt.faults is not None
        else 0
    )
    abandoned = (
        rt.reliable.stats.items_abandoned if rt.reliable is not None else 0
    )
    accounted = (
        delivered + shed + lost + lost_to_crash + abandoned + buffered + parked
    )
    balanced: Optional[bool]
    if rt.faults is not None and rt.reliable is None and _dup_possible(rt):
        balanced = None
    else:
        balanced = produced == accounted
    out = {
        "produced": produced,
        "delivered": delivered,
        "shed": shed,
        "lost": lost,
        "abandoned": abandoned,
        "buffered": buffered,
        "parked": parked,
        "balanced": balanced,
    }
    if rt.dead_procs is not None:
        out["lost_to_crash"] = lost_to_crash
    return out


def _dup_possible(rt: "RuntimeSystem") -> bool:
    plan = rt.faults.plan
    if plan.dup > 0:
        return True
    return any(w.kind == "dup" for w in plan.windows)


class FlowController:
    """Per-runtime credit gates, overload detector and shedding policy."""

    __slots__ = (
        "rt",
        "config",
        "stats",
        "on_loss",
        "shed_by_dest",
        "_ct_gates",
        "_nic_gates",
        "_flush_waiters",
        "_stall_marks",
        "_overloaded",
    )

    def __init__(self, rt: "RuntimeSystem", config: FlowConfig) -> None:
        self.rt = rt
        self.config = config
        self.stats = FlowStats()
        #: ``hook(msg, items)`` called for every shed message; installed
        #: by ``rt.wire_loss_accounting`` for quiescence bookkeeping.
        self.on_loss: Optional[Callable[[Any, int], None]] = None
        #: Shed message counts keyed by destination process.
        self.shed_by_dest: Dict[int, int] = {}
        #: pid -> (gate, comm thread); empty in non-SMP mode.
        self._ct_gates: Dict[int, Tuple[CreditGate, "CommThread"]] = {}
        #: id(nic) -> (gate, nic).
        self._nic_gates: Dict[int, Tuple[CreditGate, "Nic"]] = {}
        #: id(gate) -> {(id(scheme), wid): (scheme, wid)} deferred flushes.
        self._flush_waiters: Dict[int, Dict[Tuple[int, int], Tuple[Any, int]]] = {}
        #: wid -> (id(ctx), ctx.start): dedupes stall charges per task.
        self._stall_marks: Dict[int, Tuple[int, float]] = {}
        self._overloaded = False
        if rt.machine.smp:
            for proc in rt.processes:
                ct = proc.commthread
                if ct is not None:
                    gate = CreditGate(
                        f"ct:{proc.pid}", config.ct_max_msgs, config.ct_max_bytes
                    )
                    self._ct_gates[proc.pid] = (gate, ct)
        for node in rt.nodes:
            for i, nic in enumerate(node.nics):
                gate = CreditGate(
                    f"nic:{node.node_id}.{i}",
                    config.nic_max_msgs,
                    config.nic_max_bytes,
                )
                self._nic_gates[id(nic)] = (gate, nic)

    # ------------------------------------------------------------------
    # Admission (called by the transport)
    # ------------------------------------------------------------------
    def submit_ct(self, ct: "CommThread", msg: "NetMessage") -> None:
        """Gate a message headed for a comm thread's send service."""
        if msg.kind in _CONTROL_KINDS:
            ct.submit_outbound(msg)
            return
        gate, _ = self._ct_gates[ct.pid]
        self._check_overload(gate, self._ct_pressure(ct))
        if not gate.parked and gate.can_admit(msg.size_bytes):
            self._admit_ct(gate, ct, msg)
        else:
            self._park_or_shed(
                gate,
                msg,
                self._ct_pressure(ct),
                lambda: self._admit_ct(gate, ct, msg),
            )

    def submit_nic(
        self, nic: "Nic", msg: "NetMessage", dst_nic: "Nic", wire_latency_ns: float
    ) -> None:
        """Gate a message headed for a NIC's tx serialization."""
        if msg.kind in _CONTROL_KINDS:
            nic.inject(msg, dst_nic, wire_latency_ns)
            return
        gate, _ = self._nic_gates[id(nic)]
        self._check_overload(gate, nic.tx_backlog_ns)
        if not gate.parked and gate.can_admit(msg.size_bytes):
            self._admit_nic(gate, nic, msg, dst_nic, wire_latency_ns)
        else:
            self._park_or_shed(
                gate,
                msg,
                nic.tx_backlog_ns,
                lambda: self._admit_nic(gate, nic, msg, dst_nic, wire_latency_ns),
            )

    def _admit_ct(self, gate: CreditGate, ct: "CommThread", msg: "NetMessage") -> None:
        gate.acquire(msg.size_bytes)
        self.stats.messages_admitted += 1
        ct.submit_outbound(msg)
        # The credit returns when the comm thread would finish this
        # message's send service (the server is FIFO, so its post-booking
        # horizon is exactly that time).
        self.rt.engine.timer_at(ct._free, self._release, gate, msg.size_bytes)

    def _admit_nic(
        self,
        gate: CreditGate,
        nic: "Nic",
        msg: "NetMessage",
        dst_nic: "Nic",
        wire_latency_ns: float,
    ) -> None:
        gate.acquire(msg.size_bytes)
        self.stats.messages_admitted += 1
        nic.inject(msg, dst_nic, wire_latency_ns)
        self.rt.engine.timer_at(nic._tx_free, self._release, gate, msg.size_bytes)

    # ------------------------------------------------------------------
    # Parking, shedding, release
    # ------------------------------------------------------------------
    def _park_or_shed(
        self,
        gate: CreditGate,
        msg: "NetMessage",
        pressure_ns: float,
        admit: Callable[[], None],
    ) -> None:
        cfg = self.config
        if (
            cfg.shed_backlog_ns is not None
            and msg.seq is None  # never shed reliably-tracked messages
            and pressure_ns >= cfg.shed_backlog_ns
            and gate.parked_for(msg.dst_process) >= cfg.max_parked_per_dest
        ):
            self._shed(msg)
            return
        gate.park(
            ParkedMessage(msg, admit, msg.dst_process, self.rt.engine.now)
        )
        self.stats.messages_parked += 1

    def _shed(self, msg: "NetMessage") -> None:
        items = _payload_items(msg)
        self.stats.messages_shed += 1
        self.stats.items_shed += items
        self.stats.bytes_shed += msg.size_bytes
        dest = msg.dst_process
        self.shed_by_dest[dest] = self.shed_by_dest.get(dest, 0) + 1
        if self.on_loss is not None:
            self.on_loss(msg, items)

    def _release(self, gate: CreditGate, nbytes: int) -> None:
        gate.release(nbytes)
        now = self.rt.engine.now
        while gate.parked:
            head = gate.parked[0]
            if not gate.can_admit(head.msg.size_bytes):
                break
            gate.pop_parked()
            wait = now - head.t_parked
            self.stats.park_wait_ns += wait
            span = head.msg.span
            if span is not None:
                # Parked time sits between send_time and pe_arrival, so
                # attributing it keeps the stage-partition identity.
                span.bp_stall_ns += wait
            head.admit()
        if not gate.blocked:
            self._resume_flushes(gate)
        self._maybe_clear_overload()

    # ------------------------------------------------------------------
    # Backpressure into the schemes
    # ------------------------------------------------------------------
    def _source_gate(self, wid: int) -> Optional[CreditGate]:
        """The gate a worker's outbound traffic passes first."""
        machine = self.rt.machine
        pid = machine.process_of_worker(wid)
        if machine.smp:
            entry = self._ct_gates.get(pid)
            return entry[0] if entry is not None else None
        node = machine.node_of_process(pid)
        nic = self.rt.node(node).nic_for_process(pid)
        return self._nic_gates[id(nic)][0]

    def _source_pressure(self, wid: int) -> float:
        machine = self.rt.machine
        pid = machine.process_of_worker(wid)
        if machine.smp:
            return self._ct_pressure(self._ct_gates[pid][1])
        node = machine.node_of_process(pid)
        return self.rt.node(node).nic_for_process(pid).tx_backlog_ns

    def _ct_pressure(self, ct: "CommThread") -> float:
        """Comm-thread backlog including any remaining scripted stall."""
        pressure = ct.backlog_ns
        faults = self.rt.faults
        if faults is not None:
            pressure += faults.stall_remaining_ns(ct.pid, self.rt.engine.now)
        return pressure

    def source_stall_ns(self, ctx) -> float:
        """CPU stall to charge a producing task, once per task.

        Called from the schemes' insert paths; returns 0 unless the
        worker's source gate is congested past the overload threshold.
        The stall is bounded by ``FlowConfig.max_stall_ns`` so a single
        task never sleeps for the whole backlog.
        """
        wid = ctx.worker.wid
        mark = (id(ctx), ctx.start)
        if self._stall_marks.get(wid) == mark:
            return 0.0
        cfg = self.config
        gate = self._source_gate(wid)
        if gate is None:
            return 0.0
        pressure = self._source_pressure(wid)
        if not gate.blocked and pressure <= cfg.overload_backlog_ns:
            return 0.0
        self._stall_marks[wid] = mark
        stall = min(cfg.max_stall_ns, max(0.0, pressure - cfg.clear_backlog_ns))
        if stall <= 0.0:
            return 0.0
        self.stats.source_stalls += 1
        self.stats.source_stall_ns += stall
        return stall

    def defer_flush(self, scheme, wid: int) -> bool:
        """Defer a non-full flush while the source gate is blocked.

        Returns True when the flush was deferred; the controller reposts
        the scheme's flush task on the owning worker once the gate
        unblocks. Returning False means the caller should flush now.
        """
        gate = self._source_gate(wid)
        if gate is None or not gate.blocked:
            return False
        waiters = self._flush_waiters.setdefault(id(gate), {})
        key = (id(scheme), wid)
        if key not in waiters:
            waiters[key] = (scheme, wid)
            self.stats.flush_deferrals += 1
        return True

    def _resume_flushes(self, gate: CreditGate) -> None:
        waiters = self._flush_waiters.pop(id(gate), None)
        if not waiters:
            return
        for scheme, wid in waiters.values():
            self.rt.worker(wid).post_task(
                scheme._flush_task, expedited=scheme.config.expedited
            )

    # ------------------------------------------------------------------
    # Crash fabric
    # ------------------------------------------------------------------
    def on_process_crashed(self, pid: int) -> None:
        """Release everything held for or by the dead process ``pid``.

        Parked messages to or from it are destroyed and accounted (a
        parked FIFO waiting on a dead destination would otherwise hold
        its gate slot forever — the credit-leak deadlock). Credits
        already acquired need no special handling: their release timers
        fire at the server's booked horizon regardless, so in-flight
        credit always returns.
        """
        faults = self.rt.faults
        machine = self.rt.machine

        def doomed(entry: ParkedMessage) -> bool:
            if entry.dst_process == pid:
                return True
            return machine.process_of_worker(entry.msg.src_worker) == pid

        for gate in self.gates():
            if not gate.parked:
                continue
            for entry in gate.purge(doomed):
                if faults is not None:
                    faults.note_crash_destroyed(entry.msg)
            if not gate.blocked:
                self._resume_flushes(gate)
        # Flush deferrals registered by the dead process's own workers
        # resolve harmlessly: the reposted flush task lands on a dead
        # worker and is dropped (its buffers were drained at crash).
        self._maybe_clear_overload()

    # ------------------------------------------------------------------
    # Overload detector
    # ------------------------------------------------------------------
    def _check_overload(self, gate: CreditGate, pressure_ns: float) -> None:
        if self._overloaded:
            return
        if pressure_ns > self.config.overload_backlog_ns or gate.parked:
            self._overloaded = True
            self.stats.overload_escalations += 1
            for scheme in self.rt.schemes:
                scheme.on_overload()

    def _maybe_clear_overload(self) -> None:
        if not self._overloaded:
            return
        clear = self.config.clear_backlog_ns
        now = self.rt.engine.now
        for gate, ct in self._ct_gates.values():
            if gate.parked or self._ct_pressure(ct) >= clear:
                return
        for gate, nic in self._nic_gates.values():
            if gate.parked or nic.tx_backlog_ns >= clear:
                return
        self._overloaded = False
        self.stats.overload_clears += 1
        for scheme in self.rt.schemes:
            scheme.on_overload_cleared()

    @property
    def overloaded(self) -> bool:
        """Whether the overload detector is currently escalated."""
        return self._overloaded

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def gates(self) -> List[CreditGate]:
        """All gates (comm-thread gates first, then NIC gates)."""
        return [g for g, _ in self._ct_gates.values()] + [
            g for g, _ in self._nic_gates.values()
        ]

    def parked_messages(self) -> int:
        """Messages currently parked across all gates."""
        return sum(len(g.parked) for g in self.gates())

    def parked_items(self) -> int:
        """Items inside currently parked messages."""
        return sum(
            _payload_items(e.msg) for g in self.gates() for e in g.parked
        )

    def conservation(self) -> dict:
        """Item-conservation ledger across the whole runtime.

        ``produced == delivered + shed + lost + abandoned + buffered +
        parked`` whenever the accounting is closable — plus a
        ``lost_to_crash`` term (reported only when the crash fabric is
        armed, so crash-free artifacts are unchanged). ``balanced`` is
        ``None`` when duplication faults run without the reliability
        layer (duplicates deliver twice, so no conservation identity
        exists), a bool otherwise.
        """
        return conservation_ledger(self.rt)

    def to_dict(self) -> dict:
        """Snapshot block: stats, per-gate occupancy, conservation."""
        return {
            "stats": self.stats.to_dict(),
            "gates": [g.to_dict() for g in self.gates()],
            "shed_by_dest": dict(self.shed_by_dest),
            "conservation": self.conservation(),
        }
