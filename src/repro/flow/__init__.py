"""End-to-end backpressure and credit-based flow control (see ``docs/robustness.md``).

Bounded occupancy for the comm-thread and NIC virtual-clock servers,
credit-based admission between pipeline stages, backpressure into the
TramLib source buffers, an overload detector with scheme escalation,
and an explicit per-destination shedding policy whose drops feed
loss-aware quiescence accounting. Off by default; a runtime without a
config pays one ``is None`` check per message.
"""

from repro.flow.config import FlowConfig
from repro.flow.context import (
    FlowSession,
    active_flow_config,
    active_flow_session,
)
from repro.flow.controller import FlowController, FlowStats, conservation_ledger
from repro.flow.credit import CreditGate

__all__ = [
    "FlowConfig",
    "FlowController",
    "FlowStats",
    "CreditGate",
    "conservation_ledger",
    "FlowSession",
    "active_flow_config",
    "active_flow_session",
]
