"""Credit gates: bounded occupancy in front of a virtual-clock server.

The simulator's comm threads and NICs are virtual-clock FIFO servers —
they have no explicit queue, only a ``_free`` horizon. A
:class:`CreditGate` bounds how much work may be *booked* on such a
server at once: each admitted message consumes one message credit and
its size in byte credits until the server would have finished serving it
(the release event fires at the server's post-booking ``_free``). When
either cap is hit, further messages park in the gate's FIFO and are
admitted in order as credits return — preserving per-channel ordering,
which the reliability layer's dedup window relies on.

One liveness rule: a message is always admitted when the gate is
completely empty, so a single message larger than ``max_bytes`` cannot
deadlock the pipeline (mirrors the classic "always accept one message"
rule of credit-based link-level flow control).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict


class ParkedMessage:
    """One message held at a gate waiting for credits."""

    __slots__ = ("msg", "admit", "dst_process", "t_parked")

    def __init__(
        self, msg, admit: Callable[[], None], dst_process: int, t_parked: float
    ) -> None:
        self.msg = msg
        #: Zero-arg closure that performs the deferred admission.
        self.admit = admit
        self.dst_process = dst_process
        self.t_parked = t_parked


class CreditGate:
    """Message + byte credit accounting for one server."""

    __slots__ = (
        "name",
        "max_msgs",
        "max_bytes",
        "in_flight_msgs",
        "in_flight_bytes",
        "parked",
        "_parked_by_dest",
        "hwm_msgs",
        "hwm_bytes",
        "hwm_parked",
    )

    def __init__(self, name: str, max_msgs: int, max_bytes: int) -> None:
        self.name = name
        self.max_msgs = max_msgs
        self.max_bytes = max_bytes
        self.in_flight_msgs = 0
        self.in_flight_bytes = 0
        self.parked: Deque[ParkedMessage] = deque()
        self._parked_by_dest: Dict[int, int] = {}
        self.hwm_msgs = 0
        self.hwm_bytes = 0
        self.hwm_parked = 0

    def can_admit(self, nbytes: int) -> bool:
        """Whether a message of ``nbytes`` fits under the caps now."""
        if self.in_flight_msgs == 0:
            return True  # empty gate always accepts one message
        return (
            self.in_flight_msgs < self.max_msgs
            and self.in_flight_bytes + nbytes <= self.max_bytes
        )

    def acquire(self, nbytes: int) -> None:
        self.in_flight_msgs += 1
        self.in_flight_bytes += nbytes
        if self.in_flight_msgs > self.hwm_msgs:
            self.hwm_msgs = self.in_flight_msgs
        if self.in_flight_bytes > self.hwm_bytes:
            self.hwm_bytes = self.in_flight_bytes

    def release(self, nbytes: int) -> None:
        self.in_flight_msgs -= 1
        self.in_flight_bytes -= nbytes

    # ------------------------------------------------------------------
    # Parked FIFO
    # ------------------------------------------------------------------
    def park(self, entry: ParkedMessage) -> None:
        self.parked.append(entry)
        dest = entry.dst_process
        self._parked_by_dest[dest] = self._parked_by_dest.get(dest, 0) + 1
        if len(self.parked) > self.hwm_parked:
            self.hwm_parked = len(self.parked)

    def pop_parked(self) -> ParkedMessage:
        entry = self.parked.popleft()
        remaining = self._parked_by_dest[entry.dst_process] - 1
        if remaining:
            self._parked_by_dest[entry.dst_process] = remaining
        else:
            del self._parked_by_dest[entry.dst_process]
        return entry

    def parked_for(self, dst_process: int) -> int:
        """Currently parked messages addressed to ``dst_process``."""
        return self._parked_by_dest.get(dst_process, 0)

    def purge(self, predicate: Callable[[ParkedMessage], bool]) -> list:
        """Remove (and return) parked entries matching ``predicate``.

        Used by the crash fabric to drop messages held for — or sourced
        from — a dead process; relative order of survivors is kept.
        """
        removed = [e for e in self.parked if predicate(e)]
        if removed:
            kept = [e for e in self.parked if not predicate(e)]
            self.parked = deque(kept)
            self._parked_by_dest = {}
            for e in kept:
                dest = e.dst_process
                self._parked_by_dest[dest] = self._parked_by_dest.get(dest, 0) + 1
        return removed

    @property
    def blocked(self) -> bool:
        """Whether new arrivals would park (credits exhausted or FIFO
        non-empty — arrivals may not overtake parked messages)."""
        return bool(self.parked) or (
            self.in_flight_msgs > 0
            and (
                self.in_flight_msgs >= self.max_msgs
                or self.in_flight_bytes >= self.max_bytes
            )
        )

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "max_msgs": self.max_msgs,
            "max_bytes": self.max_bytes,
            "in_flight_msgs": self.in_flight_msgs,
            "in_flight_bytes": self.in_flight_bytes,
            "parked": len(self.parked),
            "hwm_msgs": self.hwm_msgs,
            "hwm_bytes": self.hwm_bytes,
            "hwm_parked": self.hwm_parked,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CreditGate {self.name} {self.in_flight_msgs}/{self.max_msgs} msgs "
            f"{self.in_flight_bytes}/{self.max_bytes} B parked={len(self.parked)}>"
        )
