"""Declarative flow-control configuration.

A :class:`FlowConfig` bounds the occupancy of the virtual-clock servers
(comm threads and NIC tx) with byte + message credit caps, and describes
when the runtime should escalate (overload) and shed load. Like
``FaultPlan`` it is frozen and declarative: the same config always
produces the same admission decisions for the same event sequence.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.errors import FlowControlError


@dataclass(frozen=True)
class FlowConfig:
    """Credit caps, overload thresholds and shedding policy.

    Parameters
    ----------
    enabled:
        Master switch. A disabled config behaves exactly like no config:
        the runtime carries ``rt.flow is None`` and pays one check per
        message.
    ct_max_msgs / ct_max_bytes:
        Per-comm-thread send-credit caps (SMP mode). A worker's released
        message is admitted only while the comm thread's in-flight
        occupancy is below both caps; otherwise it parks in a bounded
        FIFO until credits return.
    nic_max_msgs / nic_max_bytes:
        Per-NIC tx-credit caps; comm threads (or, non-SMP, the sending
        workers) acquire these before injecting onto the wire.
    overload_backlog_ns:
        Backlog (server booked-ahead time) past which the overload
        detector escalates: schemes stretch their flush timers by
        ``TramConfig.overload_flush_stretch`` and grow their effective
        buffer capacity by ``TramConfig.overload_buffer_growth``.
    clear_backlog_ns:
        Hysteresis floor: overload clears once every gate has drained
        its parked queue and all backlogs sit below this value.
    shed_backlog_ns:
        Optional shedding threshold. When the backlog exceeds it *and* a
        destination already has ``max_parked_per_dest`` messages parked,
        further unprotected messages to that destination are destroyed
        (counted in ``flow.items_shed`` and fed to loss-aware quiescence
        accounting). ``None`` (the default) never sheds: messages park
        until credits return. Messages under reliable delivery are never
        shed — recovery is the reliability layer's job.
    max_parked_per_dest:
        Parked-message budget per destination process before the
        shedding policy applies.
    max_stall_ns:
        Upper bound on the CPU stall charged to a producing worker per
        task when its source gate is congested (backpressure propagation
        into the TramLib insert path).
    """

    enabled: bool = True
    ct_max_msgs: int = 64
    ct_max_bytes: int = 1_048_576
    nic_max_msgs: int = 128
    nic_max_bytes: int = 4_194_304
    overload_backlog_ns: float = 200_000.0
    clear_backlog_ns: float = 50_000.0
    shed_backlog_ns: Optional[float] = None
    max_parked_per_dest: int = 64
    max_stall_ns: float = 50_000.0

    def __post_init__(self) -> None:
        for name in ("ct_max_msgs", "ct_max_bytes", "nic_max_msgs", "nic_max_bytes"):
            value = getattr(self, name)
            if not isinstance(value, int) or value < 1:
                raise FlowControlError(f"{name} must be a positive integer, got {value!r}")
        if self.overload_backlog_ns <= 0:
            raise FlowControlError(
                f"overload_backlog_ns must be positive, got {self.overload_backlog_ns!r}"
            )
        if not 0 <= self.clear_backlog_ns <= self.overload_backlog_ns:
            raise FlowControlError(
                "clear_backlog_ns must lie in [0, overload_backlog_ns], got "
                f"{self.clear_backlog_ns!r}"
            )
        if self.shed_backlog_ns is not None and self.shed_backlog_ns <= 0:
            raise FlowControlError(
                f"shed_backlog_ns must be positive or None, got {self.shed_backlog_ns!r}"
            )
        if not isinstance(self.max_parked_per_dest, int) or self.max_parked_per_dest < 1:
            raise FlowControlError(
                f"max_parked_per_dest must be a positive integer, got "
                f"{self.max_parked_per_dest!r}"
            )
        if self.max_stall_ns < 0:
            raise FlowControlError(
                f"max_stall_ns must be non-negative, got {self.max_stall_ns!r}"
            )

    def with_(self, **changes) -> "FlowConfig":
        """A copy with the given fields replaced (re-validated)."""
        return replace(self, **changes)

    # ------------------------------------------------------------------
    # Declarative spec parsing (the --flow CLI route)
    # ------------------------------------------------------------------
    _SPEC_KEYS = {
        "ct_msgs": ("ct_max_msgs", int),
        "ct_bytes": ("ct_max_bytes", int),
        "nic_msgs": ("nic_max_msgs", int),
        "nic_bytes": ("nic_max_bytes", int),
        "overload": ("overload_backlog_ns", float),
        "clear": ("clear_backlog_ns", float),
        "shed": ("shed_backlog_ns", float),
        "parked_per_dest": ("max_parked_per_dest", int),
        "stall_max": ("max_stall_ns", float),
    }

    @classmethod
    def parse(cls, spec: str) -> "FlowConfig":
        """Parse a comma-separated ``key=value`` spec string.

        Keys: ``ct_msgs``, ``ct_bytes``, ``nic_msgs``, ``nic_bytes``,
        ``overload`` (ns), ``clear`` (ns), ``shed`` (ns),
        ``parked_per_dest``, ``stall_max`` (ns). An empty spec yields
        the defaults.

        >>> FlowConfig.parse("ct_msgs=8,ct_bytes=4096,overload=50000")
        ... # doctest: +ELLIPSIS
        FlowConfig(enabled=True, ct_max_msgs=8, ct_max_bytes=4096, ...)
        """
        kwargs = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, raw = part.partition("=")
            key = key.strip()
            if not sep:
                raise FlowControlError(f"flow spec entry {part!r} is not key=value")
            try:
                field, conv = cls._SPEC_KEYS[key]
            except KeyError:
                raise FlowControlError(
                    f"unknown flow spec key {key!r} "
                    f"(known: {', '.join(sorted(cls._SPEC_KEYS))})"
                ) from None
            try:
                kwargs[field] = conv(raw.strip())
            except ValueError:
                raise FlowControlError(
                    f"flow spec value for {key!r} is not a number: {raw!r}"
                ) from None
        return cls(**kwargs)
