"""Ambient flow-control session, mirroring :class:`repro.faults.context.FaultSession`.

The harness cannot thread a :class:`~repro.flow.config.FlowConfig`
through every figure body, so — exactly like observability and fault
injection — it wraps the run in a :class:`FlowSession`; runtimes
constructed inside pick up the session's config automatically::

    with FlowSession(FlowConfig.parse("ct_msgs=16,overload=100000")):
        run_figure_body()   # every RuntimeSystem built here is flow-controlled

An explicit ``flow=`` argument to the runtime constructor overrides the
ambient config. Sessions nest; the inner one wins until it exits.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.flow.config import FlowConfig

_active: Optional["FlowSession"] = None


class FlowSession:
    """Installs a flow config ambiently for runtimes built inside it."""

    def __init__(self, config: FlowConfig) -> None:
        self.config = config
        self._prev: Optional["FlowSession"] = None

    def __enter__(self) -> "FlowSession":
        global _active
        self._prev = _active
        _active = self
        return self

    def __exit__(self, *exc_info: Any) -> None:
        global _active
        _active = self._prev
        self._prev = None


def active_flow_session() -> Optional["FlowSession"]:
    """The innermost active :class:`FlowSession`, if any."""
    return _active


def active_flow_config() -> Optional[FlowConfig]:
    """The innermost active session's config, if any."""
    return _active.config if _active is not None else None
