"""Small shared utilities: ASCII tables and summary statistics."""

from repro.util.stats import mean_std, summarize_trials
from repro.util.tables import render_table

__all__ = ["mean_std", "render_table", "summarize_trials"]
