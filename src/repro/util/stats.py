"""Summary statistics over repeated trials (error bars).

The paper reports error bars over multiple trials including warm-ups;
the simulator is deterministic given a seed, so trials here vary the
seed, capturing workload randomness rather than machine noise.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence, Tuple


def mean_std(values: Sequence[float]) -> Tuple[float, float]:
    """Sample mean and (n-1) standard deviation; std=0 for n<2."""
    n = len(values)
    if n == 0:
        raise ValueError("mean_std of empty sequence")
    mean = sum(values) / n
    if n < 2:
        return mean, 0.0
    var = sum((v - mean) ** 2 for v in values) / (n - 1)
    return mean, math.sqrt(var)


def summarize_trials(
    run: Callable[[int], float], seeds: Sequence[int]
) -> Tuple[float, float]:
    """Run ``run(seed)`` for each seed; return (mean, std) of results."""
    return mean_std([run(seed) for seed in seeds])
