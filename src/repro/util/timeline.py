"""Export simulation traces to the Chrome trace-event format.

Load the produced JSON in ``chrome://tracing`` / Perfetto to inspect a
run visually: one row per worker PE with its task executions, plus —
when the ``"msg"`` category is captured — the transport hops of every
network message (comm-thread service, NIC serialization) connected by
flow arrows from send to receive. Intended for debugging small runs
(tracing is off by default — it is on the simulator's hot path).

Usage::

    tracer = Tracer(categories=["task", "msg"])
    rt = RuntimeSystem(machine, tracer=tracer)
    attach_task_tracing(rt, tracer)
    ... run ...
    write_chrome_trace(tracer, "run.json")

Row layout: pid 0 = worker task execution, pid 1 = transport machinery
(comm threads on their process id, NICs on ``1000 + node``), pid 2 =
per-worker message endpoints (send release / receive enqueue markers),
pid 3 = flight-recorder counter tracks (when a timeline block is merged
in via ``write_chrome_trace(..., timeline=...)``).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple, Union

from repro.sim.trace import Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.system import RuntimeSystem


def attach_task_tracing(rt: "RuntimeSystem", tracer: Tracer) -> None:
    """Record every worker task execution into ``tracer``.

    Installs each worker's ``task_hook``; remove by setting the hooks
    back to ``None``.
    """

    def hook(worker, fn, ctx):
        tracer.record(
            "task",
            wid=worker.wid,
            name=getattr(fn, "__qualname__", "task"),
            start=ctx.start,
            dur=ctx.cost,
        )

    for worker in rt.workers:
        worker.task_hook = hook


def chrome_trace_events(tracer: Tracer) -> List[dict]:
    """Convert captured ``task`` records to trace-event dicts."""
    events = []
    for _, fields in tracer.records("task"):
        events.append(
            {
                "name": fields.get("name", "task"),
                "cat": "task",
                "ph": "X",  # complete event
                "ts": fields["start"] / 1e3,  # chrome wants microseconds
                "dur": max(fields["dur"], 1.0) / 1e3,
                "pid": 0,
                "tid": fields["wid"],
            }
        )
    return events


#: Canonical hop order along a message's path (send side -> receive side).
_FLOW_ORDER = {
    "send": 0,
    "ct_out": 1,
    "nic_tx": 2,
    "nic_rx": 3,
    "ct_in": 4,
    "recv": 5,
}

#: Visual width of the instantaneous send/recv endpoint markers (ns).
_ENDPOINT_DUR_NS = 50.0


def flow_trace_events(tracer: Tracer) -> List[dict]:
    """Convert captured ``msg`` records to hop slices + flow arrows.

    Each transport hop becomes an ``X`` slice (comm-thread service and
    NIC serialization at their true simulated extent; send/recv as thin
    endpoint markers), and every message with at least two captured hops
    gets a Chrome flow (``s``/``t``/``f`` events sharing ``id``) so
    Perfetto draws arrows linking send -> comm thread -> NIC -> recv.
    """
    events: List[dict] = []
    per_msg: Dict[int, List[Tuple[int, float, int, int]]] = {}
    for _, f in tracer.records("msg"):
        hop = f["hop"]
        if hop in ("send", "recv"):
            ts, dur = f["t"], _ENDPOINT_DUR_NS
            pid, tid = 2, f["wid"]
        else:
            ts, dur = f["start"], max(f["dur"], 1.0)
            pid = 1
            tid = f["pid"] if hop in ("ct_out", "ct_in") else 1000 + f["node"]
        event = {
            "name": hop,
            "cat": "msg",
            "ph": "X",
            "ts": ts / 1e3,
            "dur": dur / 1e3,
            "pid": pid,
            "tid": tid,
            "args": {"msg_id": f["msg_id"]},
        }
        if hop == "send":
            event["args"].update(
                dst_process=f.get("dst_process"),
                size=f.get("size"),
                route=f.get("route"),
            )
        events.append(event)
        per_msg.setdefault(f["msg_id"], []).append(
            (_FLOW_ORDER.get(hop, len(_FLOW_ORDER)), ts, pid, tid)
        )

    for msg_id, hops in per_msg.items():
        if len(hops) < 2:
            continue  # nothing to link
        hops.sort()
        last = len(hops) - 1
        for i, (_, ts, pid, tid) in enumerate(hops):
            phase = "s" if i == 0 else ("f" if i == last else "t")
            flow = {
                "name": "msgflow",
                "cat": "msgflow",
                "ph": phase,
                "id": msg_id,
                "ts": ts / 1e3,
                "pid": pid,
                "tid": tid,
            }
            if phase == "f":
                flow["bp"] = "e"  # bind to the enclosing slice
            events.append(flow)
    return events


#: Chrome pid hosting the flight-recorder counter tracks.
_COUNTER_PID = 3


def counter_trace_events(timeline: dict) -> List[dict]:
    """Convert a flight-recorder ``timeline`` block to counter events.

    Each sampled series becomes a Chrome ``ph: "C"`` counter track on
    pid 3, so Perfetto renders the sampled gauges (backlogs, gate
    occupancy, buffered items, overload state) as little area charts
    time-aligned with the task/message rows from the same run.

    Accepts the dict produced by
    :meth:`repro.obs.timeline.TimelineRecorder.to_dict` (the per-run
    ``"timeline"`` block of a metrics artifact).
    """
    times = timeline.get("times_ns") or []
    series = timeline.get("series") or {}
    events: List[dict] = []
    for name, column in sorted(series.items()):
        if not any(column):
            continue  # flat-zero track: noise in the UI
        for t, v in zip(times, column):
            events.append(
                {
                    "name": name,
                    "cat": "telemetry",
                    "ph": "C",
                    "ts": t / 1e3,
                    "pid": _COUNTER_PID,
                    "args": {"value": v},
                }
            )
    return events


def _metadata_events(events: List[dict]) -> List[dict]:
    """Process-name metadata rows for the pids actually present."""
    names = {0: "workers (tasks)", 1: "transport (comm threads / NICs)",
             2: "message endpoints", _COUNTER_PID: "telemetry (counters)"}
    present = sorted({e["pid"] for e in events})
    return [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "args": {"name": names.get(pid, f"pid {pid}")},
        }
        for pid in present
    ]


def write_chrome_trace(
    tracer: Tracer,
    path: Union[str, Path],
    timeline: Optional[dict] = None,
) -> int:
    """Write the captured trace (tasks + message flows) as Chrome JSON.

    When ``timeline`` is given (a flight-recorder block from the same
    run), its sampled series are merged in as counter tracks on their
    own process row. Returns the number of events written.
    """
    events = chrome_trace_events(tracer) + flow_trace_events(tracer)
    if timeline is not None:
        events += counter_trace_events(timeline)
    events += _metadata_events(events)
    payload = {"traceEvents": events, "displayTimeUnit": "ns"}
    Path(path).write_text(json.dumps(payload))
    return len(events)
