"""Export simulation traces to the Chrome trace-event format.

Load the produced JSON in ``chrome://tracing`` / Perfetto to inspect a
run visually: one row per worker PE with its task executions. Intended
for debugging small runs (tracing is off by default — it is on the
simulator's hot path).

Usage::

    tracer = Tracer(categories=["task"])
    rt = RuntimeSystem(machine, tracer=tracer)
    attach_task_tracing(rt, tracer)
    ... run ...
    write_chrome_trace(tracer, "run.json")
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, List, Union

from repro.sim.trace import Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.system import RuntimeSystem


def attach_task_tracing(rt: "RuntimeSystem", tracer: Tracer) -> None:
    """Record every worker task execution into ``tracer``.

    Installs each worker's ``task_hook``; remove by setting the hooks
    back to ``None``.
    """

    def hook(worker, fn, ctx):
        tracer.record(
            "task",
            wid=worker.wid,
            name=getattr(fn, "__qualname__", "task"),
            start=ctx.start,
            dur=ctx.cost,
        )

    for worker in rt.workers:
        worker.task_hook = hook


def chrome_trace_events(tracer: Tracer) -> List[dict]:
    """Convert captured ``task`` records to trace-event dicts."""
    events = []
    for _, fields in tracer.records("task"):
        events.append(
            {
                "name": fields.get("name", "task"),
                "cat": "task",
                "ph": "X",  # complete event
                "ts": fields["start"] / 1e3,  # chrome wants microseconds
                "dur": max(fields["dur"], 1.0) / 1e3,
                "pid": 0,
                "tid": fields["wid"],
            }
        )
    return events


def write_chrome_trace(tracer: Tracer, path: Union[str, Path]) -> int:
    """Write the captured task trace as Chrome trace JSON.

    Returns the number of events written.
    """
    events = chrome_trace_events(tracer)
    payload = {"traceEvents": events, "displayTimeUnit": "ns"}
    Path(path).write_text(json.dumps(payload))
    return len(events)
