"""Plain-text table rendering for harness reports."""

from __future__ import annotations

from typing import Any, List, Sequence


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}"
    return str(value)


def render_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Render a fixed-width table with a header separator.

    >>> print(render_table(["a", "b"], [[1, 2.5]]))
    a  b
    -  -----
    1  2.500
    """
    cells: List[List[str]] = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip(),
        "  ".join("-" * w for w in widths),
    ]
    for row in cells:
        lines.append(
            "  ".join(c.rjust(w) for c, w in zip(row, widths)).rstrip()
        )
    return "\n".join(lines)
