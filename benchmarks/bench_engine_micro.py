"""Microbenchmarks of the DES substrate itself (simulator throughput).

These time the *simulator* (wall-clock events/second), not simulated
time — useful for tracking regressions in the engine hot path.
"""

from repro.machine import MachineConfig
from repro.network.message import NetMessage
from repro.runtime.system import RuntimeSystem
from repro.sim.engine import Engine


def test_engine_event_throughput(benchmark):
    def burn():
        eng = Engine()
        count = [0]

        def tick(remaining):
            count[0] += 1
            if remaining:
                eng.after(1.0, tick, remaining - 1)

        eng.after(0.0, tick, 50_000)
        eng.run()
        return count[0]

    assert benchmark(burn) == 50_001


def test_engine_internal_event_throughput(benchmark):
    """Same chain as above but via the no-validation ``call_after`` tier."""

    def burn():
        eng = Engine()
        count = [0]

        def tick(remaining):
            count[0] += 1
            if remaining:
                eng.call_after(1.0, tick, (remaining - 1,))

        eng.call_after(0.0, tick, (50_000,))
        eng.run()
        return count[0]

    assert benchmark(burn) == 50_001


def test_timer_churn_throughput(benchmark):
    """Arm-then-cancel timeout timers (the wheel's bread and butter).

    Models flush/retransmit timers that almost never fire: each step
    arms 50 far-out timers and cancels them all before they expire.
    """

    def burn():
        eng = Engine()
        steps = [0]

        def step(remaining):
            steps[0] += 1
            handles = [eng.timer_after(1000.0, _never) for _ in range(50)]
            for h in handles:
                eng.cancel(h)
            if remaining:
                eng.after(1.0, step, remaining - 1)

        def _never():  # pragma: no cover - cancelled before firing
            raise AssertionError("cancelled timer fired")

        eng.after(0.0, step, 999)
        eng.run()
        return steps[0]

    assert benchmark(burn) == 1000


def test_transport_message_throughput(benchmark):
    machine = MachineConfig(nodes=2, processes_per_node=2,
                            workers_per_process=2)

    def burn():
        rt = RuntimeSystem(machine, seed=0)
        got = [0]
        rt.register_handler("m", lambda ctx, msg: got.__setitem__(0, got[0] + 1))

        def driver(ctx, remaining):
            for _ in range(50):
                ctx.emit(
                    rt.transport.send,
                    NetMessage(kind="m", src_worker=0, dst_process=3,
                               dst_worker=7, size_bytes=64),
                )
            if remaining:
                ctx.emit(ctx.worker.post_task, driver, remaining - 1)

        rt.post(0, driver, 40)
        rt.run()
        return got[0]

    assert benchmark(burn) == 50 * 41


def test_bulk_insert_throughput(benchmark):
    """Flow-mode histogramming: simulated items per wall second."""
    import numpy as np

    from repro.tram import TramConfig, make_scheme

    machine = MachineConfig(nodes=4, processes_per_node=2,
                            workers_per_process=4)

    def burn():
        rt = RuntimeSystem(machine, seed=0)
        tram = make_scheme(
            "WPs", rt, TramConfig(buffer_items=64),
            deliver_bulk=lambda ctx, w, n, si, sc: None,
        )
        W = machine.total_workers

        def driver(ctx, remaining):
            rng = rt.rng.stream(f"b/{ctx.worker.wid}")
            counts = np.bincount(rng.integers(0, W, 1000), minlength=W)
            tram.insert_bulk(ctx, counts)
            if remaining:
                ctx.emit(ctx.worker.post_task, driver, remaining - 1)
            else:
                tram.flush_when_done(ctx)

        for w in range(W):
            rt.post(w, driver, 4)
        rt.run()
        return tram.stats.items_delivered

    assert benchmark(burn) == 32 * 5 * 1000
