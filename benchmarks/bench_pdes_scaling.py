#!/usr/bin/env python
"""PDES benchmark-regression suite.

Measures the conservative parallel engine (:mod:`repro.sim.parallel`)
against the sequential fast loop and emits ``BENCH_pdes.json``:

* ``phold_seq`` / ``phold_pdes_2`` / ``phold_pdes_4`` — events/sec on a
  dense 4-node PHOLD instance, sequential vs ``--sim-parallel {2,4}``;
* ``pdes_speedup_2`` / ``pdes_speedup_4`` — wall-clock ratios (x);
* ``histo_weak_pdes_4`` / ``sssp_pdes_4`` — events/sec for one
  histogram weak-scaling point and one fig16-class SSSP instance under
  4 partitions (the workloads the ROADMAP targets);
* ``fig18_rejected_<scheme>`` — the Fig 18 PHOLD rejected-event counts
  (the paper's rollback proxy), so a PHOLD behaviour regression fails
  CI like an engine-throughput regression does.

**Sequential equivalence is asserted unconditionally** on every
invocation: each partitioned run must reproduce the sequential result
bit-for-bit (every result field, numpy arrays included) or the suite
aborts — the scaling numbers are meaningless if the answers differ.

The committed copy under ``benchmarks/`` is the regression baseline:
CI re-runs the suite and fails when a bench drops below tolerance.
Speedup benches gate on fixed floors instead of the baseline value —
they measure the host's parallelism, so a baseline recorded on a
small box must not bind a CI runner (and vice versa):
``pdes_speedup_4`` requires >= 1.5x on hosts with >= 4 cores,
``pdes_speedup_2`` requires >= 1.2x on hosts with >= 2 cores, and both
are skipped on fewer cores, where forking buys nothing. The fig18
rejected counts are simulation *results*, not timings — they gate on
exact equality with the baseline on every host.

Usage::

    PYTHONPATH=src python benchmarks/bench_pdes_scaling.py \
        --out BENCH_pdes.json
    PYTHONPATH=src python benchmarks/bench_pdes_scaling.py \
        --check benchmarks/BENCH_pdes.json --tolerance 0.25
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

from repro.apps import run_histogram, run_sssp
from repro.apps.pdes.phold import run_phold
from repro.harness.figures import fig18
from repro.machine import MachineConfig
from repro.sim.parallel import PdesConfig, PdesSession

SCHEMA = "repro.bench-pdes/1"

#: Dense PHOLD scaling point: 1024 LPs / 8192 circulating events over 4
#: nodes keeps ~80 events per partition inside every lookahead window,
#: so the per-round coordination cost amortizes (conservative PDES only
#: pays off when work-per-window >> sync cost; this instance is in that
#: regime, the fig18 instance deliberately is not).
PHOLD_MACHINE = dict(nodes=4, processes_per_node=1, workers_per_process=8)
PHOLD_KW = dict(
    lps_per_worker=32, init_events_per_lp=8, quota_per_worker=4000,
    buffer_items=32,
)

#: One histogram weak-scaling point and one fig16-class SSSP instance.
APP_MACHINE = dict(nodes=4, processes_per_node=2, workers_per_process=4)
HISTO_KW = dict(updates_per_pe=6000, buffer_items=64, batch=1000)
SSSP_KW = dict(num_vertices=4096)

#: Fixed floors for the speedup benches (see module docstring).
SPEEDUP_FLOORS = {"pdes_speedup_2": (2, 1.2), "pdes_speedup_4": (4, 1.5)}


def speedup_floor(name: str, cpus: int):
    """Required speedup for this host, or None to skip the gate."""
    min_cpus, floor = SPEEDUP_FLOORS[name]
    return floor if cpus >= min_cpus else None


def _timed(fn, *args, **kwargs):
    t0 = time.perf_counter()
    result = fn(*args, **kwargs)
    return time.perf_counter() - t0, result


def _require_equal(name: str, seq, par) -> None:
    """Abort unless a partitioned result matches the sequential one."""
    if hasattr(seq, "__dataclass_fields__"):
        for f in seq.__dataclass_fields__:
            a, b = getattr(seq, f), getattr(par, f)
            same = (
                np.array_equal(a, b)
                if isinstance(a, np.ndarray)
                else a == b
            )
            if not same:
                raise SystemExit(
                    f"FATAL: {name} diverged from sequential on {f!r}: "
                    f"{a!r} != {b!r}"
                )
    elif seq != par:
        raise SystemExit(f"FATAL: {name} diverged from sequential")


# ----------------------------------------------------------------------
# Benches
# ----------------------------------------------------------------------
def run_suite(repeats: int) -> dict:
    results = {}

    def report(name, value, unit, detail):
        results[name] = {"value": round(value, 2), "unit": unit,
                         "detail": detail}
        print(f"  {name:20s} {value:12,.2f} {unit}", file=sys.stderr)

    def best(fn, *args, **kwargs):
        walls = []
        out = None
        for _ in range(repeats):
            wall, out = _timed(fn, *args, **kwargs)
            walls.append(wall)
        return min(walls), out

    machine = MachineConfig(**PHOLD_MACHINE)
    seq_wall, seq = best(run_phold, machine, "pp", **PHOLD_KW)
    report("phold_seq", seq.events / seq_wall, "events/sec",
           f"dense PHOLD {PHOLD_MACHINE}, {seq.events} events, sequential")

    for parts in (2, 4):
        def partitioned():
            with PdesSession(PdesConfig(partitions=parts)):
                return run_phold(machine, "pp", **PHOLD_KW)

        par_wall, par = best(partitioned)
        _require_equal(f"phold at --sim-parallel {parts}", seq, par)
        report(f"phold_pdes_{parts}", par.events / par_wall, "events/sec",
               f"same instance at --sim-parallel {parts}")
        report(f"pdes_speedup_{parts}", seq_wall / par_wall, "x",
               f"seq {seq_wall:.2f}s / pdes{parts} {par_wall:.2f}s "
               f"on {os.cpu_count()} cpus")

    machine = MachineConfig(**APP_MACHINE)
    _, h_seq = best(run_histogram, machine, "pp", **HISTO_KW)

    def histo_partitioned():
        with PdesSession(PdesConfig(partitions=4)):
            return run_histogram(machine, "pp", **HISTO_KW)

    h_wall, h_par = best(histo_partitioned)
    _require_equal("histogram at --sim-parallel 4", h_seq, h_par)
    report("histo_weak_pdes_4", h_par.events / h_wall, "events/sec",
           f"histogram weak-scaling point {HISTO_KW} at --sim-parallel 4")

    _, s_seq = best(run_sssp, machine, "pp", **SSSP_KW)

    def sssp_partitioned():
        with PdesSession(PdesConfig(partitions=4)):
            return run_sssp(machine, "pp", **SSSP_KW)

    s_wall, s_par = best(sssp_partitioned)
    _require_equal("sssp at --sim-parallel 4", s_seq, s_par)
    report("sssp_pdes_4", s_par.events / s_wall, "events/sec",
           f"fig16-class SSSP {SSSP_KW} at --sim-parallel 4")

    data = fig18("quick")
    for scheme, rejected in zip(data.x, data.series_by_name("rejected").y):
        report(f"fig18_rejected_{scheme}", rejected, "events",
               "Fig 18 quick-profile rejected (out-of-order) events")
    return results


# ----------------------------------------------------------------------
# Regression gate
# ----------------------------------------------------------------------
def check_regression(results: dict, baseline_path: str,
                     tolerance: float) -> int:
    with open(baseline_path) as f:
        baseline = json.load(f)
    base = baseline.get("results", {})
    cpus = os.cpu_count() or 1
    failures = []

    throughput = ("phold_seq", "phold_pdes_2", "phold_pdes_4",
                  "histo_weak_pdes_4", "sssp_pdes_4")
    for name in throughput:
        if name not in base:
            continue
        if name not in results:
            failures.append(f"{name}: missing from current run")
            continue
        floor = base[name]["value"] * (1.0 - tolerance)
        got = results[name]["value"]
        status = "ok" if got >= floor else "REGRESSION"
        print(
            f"  {name:20s} baseline={base[name]['value']:12,.2f} "
            f"now={got:12,.2f} ({got / base[name]['value']:6.1%}) {status}",
            file=sys.stderr,
        )
        if got < floor:
            failures.append(
                f"{name}: {got:,.2f} events/sec is "
                f"{1 - got / base[name]['value']:.1%} below baseline "
                f"(tolerance {tolerance:.0%})"
            )

    for name in ("pdes_speedup_2", "pdes_speedup_4"):
        floor = speedup_floor(name, cpus)
        got = results.get(name, {}).get("value")
        if floor is None:
            print(
                f"  {name:20s} skipped ({cpus} cpu(s): partitions cannot "
                "beat sequential)",
                file=sys.stderr,
            )
        elif got is None or got < floor:
            failures.append(
                f"{name}: {got}x below the {floor}x floor for {cpus} cpus"
            )
        else:
            print(f"  {name:20s} {got:.2f}x >= {floor}x floor ok",
                  file=sys.stderr)

    # Rejected-event counts are deterministic simulation results: any
    # host must reproduce the committed values exactly.
    for name in sorted(base):
        if not name.startswith("fig18_rejected_"):
            continue
        want = base[name]["value"]
        got = results.get(name, {}).get("value")
        if got != want:
            failures.append(
                f"{name}: rejected-event count changed "
                f"(baseline {want}, now {got}) — PHOLD behaviour regressed"
            )
        else:
            print(f"  {name:20s} {got:,.0f} == baseline ok",
                  file=sys.stderr)
    ww = results.get("fig18_rejected_WW", {}).get("value")
    pp = results.get("fig18_rejected_PP", {}).get("value")
    if ww and pp and not pp < 0.95 * ww:
        failures.append(
            f"fig18 paper claim violated: PP rejected {pp} not >5% "
            f"under WW {ww}"
        )

    if failures:
        print("pdes bench regression detected:", file=sys.stderr)
        for f_ in failures:
            print(f"  - {f_}", file=sys.stderr)
        return 1
    print("OK: pdes benches within tolerance/floors", file=sys.stderr)
    return 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--out", default=None, help="write BENCH_pdes.json here")
    ap.add_argument("--check", default=None,
                    help="baseline BENCH_pdes.json to compare against")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed fractional throughput drop (default 0.25)")
    ap.add_argument("--repeats", type=int, default=2,
                    help="timing repeats per bench; best run wins (default 2)")
    args = ap.parse_args(argv)

    print(
        f"running pdes bench suite (repeats={args.repeats}, "
        f"{os.cpu_count()} cpu(s))...",
        file=sys.stderr,
    )
    results = run_suite(args.repeats)
    payload = {
        "schema": SCHEMA,
        "env": {"cpus": os.cpu_count()},
        "results": results,
    }
    if args.out:
        with open(args.out, "w") as f:
            json.dump(payload, f, indent=1, sort_keys=True)
            f.write("\n")
        print(f"wrote {args.out}", file=sys.stderr)
    if args.check:
        return check_regression(results, args.check, args.tolerance)
    return 0


if __name__ == "__main__":
    sys.exit(main())
