"""Guard: disabled fault injection + reliability must stay off the hot path.

The fault fabric and the reliable-delivery layer are both gated on a
single ``is None`` check per message — a noop :class:`FaultPlan` is
dropped at runtime construction and a ``ReliabilityConfig`` with
``enabled=False`` never builds the delivery layer, so a run declared
with disabled fault machinery must cost the same as one built with no
fault arguments at all.  This bench times both interleaved and asserts
the disabled-config run is within 5% of baseline.
"""

from __future__ import annotations

import time

import numpy as np

from repro.faults import FOREVER, FaultPlan, FaultWindow
from repro.machine import MachineConfig
from repro.runtime.reliability import ReliabilityConfig
from repro.runtime.system import RuntimeSystem
from repro.tram import TramConfig, make_scheme

MACHINE = MachineConfig(nodes=2, processes_per_node=2,
                        workers_per_process=4)
ROUNDS = 20
ITEMS_PER_ROUND = 1000
REPEATS = 5
MAX_RATIO = 1.05


def _run(faults, reliability):
    rt = RuntimeSystem(MACHINE, seed=0, faults=faults, reliability=reliability)
    tram = make_scheme(
        "WPs", rt, TramConfig(buffer_items=64),
        deliver_bulk=lambda ctx, w, n, si, sc: None,
    )
    W = MACHINE.total_workers

    def driver(ctx, remaining):
        rng = rt.rng.stream(f"flt/{ctx.worker.wid}")
        counts = np.bincount(
            rng.integers(0, W, ITEMS_PER_ROUND), minlength=W)
        tram.insert_bulk(ctx, counts)
        if remaining:
            ctx.emit(ctx.worker.post_task, driver, remaining - 1)
        else:
            tram.flush_when_done(ctx)

    for w in range(W):
        rt.post(w, driver, ROUNDS)
    rt.run()
    return rt, tram.stats.items_delivered


def _time(faults, reliability):
    start = time.perf_counter()
    rt, delivered = _run(faults, reliability)
    elapsed = time.perf_counter() - start
    assert delivered == MACHINE.total_workers * (ROUNDS + 1) * ITEMS_PER_ROUND
    # Disabled machinery must reduce to the None fast path, not merely
    # run quietly.
    assert rt.faults is None
    assert rt.reliable is None
    return elapsed


def test_disabled_faults_are_free():
    # Interleave the two variants and take each one's best-of-N so a
    # transient stall on either side cannot fake (or hide) a regression.
    baseline, disabled = [], []
    _time(None, None)  # warm imports / allocator before the timed repeats
    for _ in range(REPEATS):
        baseline.append(_time(None, None))
        disabled.append(
            _time(FaultPlan(), ReliabilityConfig(enabled=False))
        )
    ratio = min(disabled) / min(baseline)
    assert ratio < MAX_RATIO, (
        f"disabled fault injection costs {ratio:.3f}x baseline "
        f"(limit {MAX_RATIO}x)"
    )


def test_unfired_crash_fabric_stays_cheap():
    """An armed-but-idle crash fabric must cost like a wire-only plan.

    Arming the fabric (any ``proc_crash`` window) adds a dead-process
    membership check per insert and per message hop.  Until a crash
    actually fires the dead set is empty, so the armed run does the
    same deterministic work as the wire-only run plus those misses —
    this gate keeps that tax inside the overhead budget.  The crash
    here is parked far past the traffic (it fires as the final event),
    so both runs deliver everything.
    """
    wire = FaultPlan(reorder=0.05, reorder_max_ns=200.0)
    armed = wire.with_window(
        FaultWindow(1e15, FOREVER, "proc_crash", target=1)
    )

    def timed(plan):
        start = time.perf_counter()
        rt, delivered = _run(plan, None)
        elapsed = time.perf_counter() - start
        expected = MACHINE.total_workers * (ROUNDS + 1) * ITEMS_PER_ROUND
        assert delivered == expected
        return rt, elapsed

    timed(wire)  # warm-up
    baseline, crashable = [], []
    for _ in range(REPEATS):
        rt_w, t_w = timed(wire)
        assert rt_w.dead_procs is None  # wire-only: fabric unbuilt
        baseline.append(t_w)
        rt_a, t_a = timed(armed)
        assert rt_a.dead_procs == {1}  # parked crash fired post-traffic
        assert rt_a.faults.stats.items_lost_to_crash == 0
        crashable.append(t_a)
    ratio = min(crashable) / min(baseline)
    assert ratio < MAX_RATIO, (
        f"armed-but-idle crash fabric costs {ratio:.3f}x the wire-only "
        f"plan (limit {MAX_RATIO}x)"
    )


def test_enabled_faults_actually_interfere():
    """Sanity: the same workload with faults *on* injects and repairs."""
    # The timeout must sit above this congested workload's RTT, or
    # spurious retransmits trip every channel's retry budget (see
    # docs/robustness.md on tuning retransmit_timeout_ns).
    rt, delivered = _run(
        FaultPlan(drop=0.02, dup=0.005),
        ReliabilityConfig(retransmit_timeout_ns=2_000_000.0),
    )
    assert delivered == MACHINE.total_workers * (ROUNDS + 1) * ITEMS_PER_ROUND
    assert rt.faults.stats.messages_dropped > 0
    assert rt.reliable.stats.retransmits > 0
    assert rt.reliable.stats.channels_degraded == 0
    assert rt.reliable.pending_count() == 0
