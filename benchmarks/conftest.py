"""Shared benchmark helpers.

Every paper figure has one benchmark file. Benchmarks run the
``quick``-profile experiment once per round (`pedantic`, one round) —
pytest-benchmark reports the wall time of regenerating the figure, and
each bench *asserts the paper's qualitative shape* on the produced data,
so `pytest benchmarks/ --benchmark-only` doubles as the reproduction
check.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark ``fn`` with a single round (experiments are seconds-long)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                              iterations=1)
