"""Fig 10 — histogram buffer-size sweep."""

from conftest import run_once

from repro.harness.figures import fig10


def test_fig10_histogram_buffer_size(benchmark):
    data = run_once(benchmark, fig10, "quick")
    for name in ("WPs", "WsP", "PP"):
        y = data.series_by_name(name).y
        # Node-aware schemes improve monotonically over the quick sweep.
        assert y[0] > y[-1]
    ww = data.series_by_name("WW").y
    # WW benefits from aggregation too, but its best point is not the
    # largest buffer once its footprint grows (<= means plateau allowed).
    assert min(ww) <= ww[-1]
