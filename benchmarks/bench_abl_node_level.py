"""Ablation: node-level aggregation (WNs / NN), the paper's deferred
"one level up" extension, on the flush-dominated all-to-all."""

from conftest import run_once

from repro.apps import run_alltoall
from repro.machine import MachineConfig

MACHINE = MachineConfig(nodes=4, processes_per_node=2, workers_per_process=4)


def test_abl_node_level_alltoall(benchmark):
    def sweep():
        return {
            s: run_alltoall(MACHINE, s, items_per_pair=2, buffer_items=256)
            for s in ("WW", "WPs", "PP", "WNs", "NN")
        }

    res = run_once(benchmark, sweep)
    msgs = {s: r.messages_sent for s, r in res.items()}
    # Message hierarchy: each aggregation level cuts flush messages.
    assert msgs["WW"] > msgs["WPs"] > msgs["WNs"]
    assert msgs["PP"] > msgs["NN"]
    # And it pays off in time for the short-stream exchange.
    assert res["WNs"].total_time_ns < res["WW"].total_time_ns
