"""Guard: disabled observability must stay off the hot path.

The stage-span instrumentation is gated on ``ObsConfig`` — when no
config is active (or ``enabled=False``) every per-message check reduces
to a single ``is None`` test, so a run with observability *disabled*
must cost the same as one built with no observability arguments at all.
This bench times both interleaved and asserts the disabled-config run
is within 5% of baseline.
"""

from __future__ import annotations

import time

import numpy as np

from repro.machine import MachineConfig
from repro.obs import ObsConfig, TimelineConfig
from repro.runtime.system import RuntimeSystem
from repro.tram import TramConfig, make_scheme

MACHINE = MachineConfig(nodes=2, processes_per_node=2,
                        workers_per_process=4)
ROUNDS = 20
ITEMS_PER_ROUND = 1000
REPEATS = 5
MAX_RATIO = 1.05


def _run(obs):
    rt = RuntimeSystem(MACHINE, seed=0, obs=obs)
    tram = make_scheme(
        "WPs", rt, TramConfig(buffer_items=64),
        deliver_bulk=lambda ctx, w, n, si, sc: None,
    )
    W = MACHINE.total_workers

    def driver(ctx, remaining):
        rng = rt.rng.stream(f"obs/{ctx.worker.wid}")
        counts = np.bincount(
            rng.integers(0, W, ITEMS_PER_ROUND), minlength=W)
        tram.insert_bulk(ctx, counts)
        if remaining:
            ctx.emit(ctx.worker.post_task, driver, remaining - 1)
        else:
            tram.flush_when_done(ctx)

    for w in range(W):
        rt.post(w, driver, ROUNDS)
    rt.run()
    return tram.stats.items_delivered


def _time(obs):
    start = time.perf_counter()
    delivered = _run(obs)
    elapsed = time.perf_counter() - start
    assert delivered == MACHINE.total_workers * (ROUNDS + 1) * ITEMS_PER_ROUND
    return elapsed


def test_disabled_obs_is_free():
    # Interleave the two variants and take each one's best-of-N so a
    # transient stall on either side cannot fake (or hide) a regression.
    baseline, disabled = [], []
    _time(None)  # warm imports / allocator before the timed repeats
    for _ in range(REPEATS):
        baseline.append(_time(None))
        disabled.append(_time(ObsConfig(enabled=False)))
    ratio = min(disabled) / min(baseline)
    assert ratio < MAX_RATIO, (
        f"disabled observability costs {ratio:.3f}x baseline "
        f"(limit {MAX_RATIO}x)"
    )


def test_timeline_sampling_overhead_bounded():
    """The flight recorder at its default cadence must stay under 5%.

    Sampling is driven from the engine loop as a single float compare
    per event plus a probe walk at each cadence boundary, so the cost
    scales with boundaries crossed, not events processed. Compared
    against the *enabled-obs* run (the recorder requires obs on), so
    the ratio isolates the sampler itself. Gated on the *best*
    back-to-back paired ratio: both halves of a pair see the same
    machine state, so a systematic >5% sampler cost shifts every pair
    and the min still trips, while one-off scheduler stalls on either
    side cannot fake a regression.
    """
    tl = ObsConfig(timeline=TimelineConfig())  # default 50us cadence
    _time(ObsConfig())  # warm imports / allocator before timed repeats
    ratios = sorted(
        _time(tl) / _time(ObsConfig()) for _ in range(REPEATS)
    )
    assert ratios[0] < MAX_RATIO, (
        f"timeline sampling costs {ratios[0]:.3f}x the obs-enabled "
        f"baseline in its best of {REPEATS} paired runs (limit "
        f"{MAX_RATIO}x; all ratios: {[round(r, 3) for r in ratios]})"
    )


def test_timeline_actually_sampled():
    """Sanity for the bench above: the timed variant really records."""
    rt = RuntimeSystem(
        MACHINE, seed=0, obs=ObsConfig(timeline=TimelineConfig())
    )
    tram = make_scheme(
        "WPs", rt, TramConfig(buffer_items=64),
        deliver_bulk=lambda ctx, w, n, si, sc: None,
    )
    W = MACHINE.total_workers

    def driver(ctx):
        rng = rt.rng.stream(f"obs/{ctx.worker.wid}")
        counts = np.bincount(rng.integers(0, W, 500), minlength=W)
        tram.insert_bulk(ctx, counts)
        tram.flush_when_done(ctx)

    for w in range(W):
        rt.post(w, driver)
    rt.run()
    assert rt.timeline is not None
    assert rt.timeline.to_dict()["n_samples"] > 0


def test_enabled_obs_records_stages():
    """Sanity: the same workload with obs *on* actually attributes time."""
    rt_check = RuntimeSystem(MACHINE, seed=0, obs=ObsConfig())
    tram = make_scheme(
        "WPs", rt_check, TramConfig(buffer_items=64),
        deliver_bulk=lambda ctx, w, n, si, sc: None,
    )
    W = MACHINE.total_workers

    def driver(ctx):
        rng = rt_check.rng.stream(f"obs/{ctx.worker.wid}")
        counts = np.bincount(rng.integers(0, W, 500), minlength=W)
        tram.insert_bulk(ctx, counts)
        tram.flush_when_done(ctx)

    for w in range(W):
        rt_check.post(w, driver)
    rt_check.run()
    assert tram.stages is not None
    assert tram.stages.total_ns() > 0.0
