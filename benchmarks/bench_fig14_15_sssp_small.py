"""Figs 14/15 — SSSP small problem: time and wasted updates."""

from conftest import run_once

from repro.harness.figures import fig14, fig15


def test_fig14_sssp_small_time(benchmark):
    data = run_once(benchmark, fig14, "quick")
    at_largest = {s.name: s.y[-1] for s in data.series}
    # Node-aware schemes do not lose to WW on small latency-bound SSSP.
    assert at_largest["PP"] <= at_largest["WW"]
    assert at_largest["WPs"] <= at_largest["WW"] * 1.05


def test_fig15_sssp_small_wasted(benchmark):
    data = run_once(benchmark, fig15, "quick")
    at_largest = {s.name: s.y[-1] for s in data.series}
    # Normalized to WW: WW == 1; PP wastes least (latency-sensitivity).
    assert at_largest["WW"] == 1.0
    assert at_largest["PP"] <= at_largest["WW"]
    assert at_largest["WPs"] <= at_largest["WW"] * 1.02
