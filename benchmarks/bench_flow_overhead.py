"""Guard: disabled flow control must stay off the hot path.

The flow subsystem is gated on a single ``rt.flow is None`` check per
message in the transport — a :class:`FlowConfig` with ``enabled=False``
never builds the controller, so a run declared with disabled flow
control must cost the same as one built with no flow argument at all.
This bench times both interleaved and asserts the disabled-config run
is within 5% of baseline.
"""

from __future__ import annotations

import time

import numpy as np

from repro.flow import FlowConfig
from repro.machine import MachineConfig
from repro.runtime.system import RuntimeSystem
from repro.tram import TramConfig, make_scheme

MACHINE = MachineConfig(nodes=2, processes_per_node=2,
                        workers_per_process=4)
ROUNDS = 20
ITEMS_PER_ROUND = 1000
REPEATS = 5
MAX_RATIO = 1.05


def _run(flow):
    rt = RuntimeSystem(MACHINE, seed=0, flow=flow)
    tram = make_scheme(
        "WPs", rt, TramConfig(buffer_items=64),
        deliver_bulk=lambda ctx, w, n, si, sc: None,
    )
    W = MACHINE.total_workers

    def driver(ctx, remaining):
        rng = rt.rng.stream(f"flw/{ctx.worker.wid}")
        counts = np.bincount(
            rng.integers(0, W, ITEMS_PER_ROUND), minlength=W)
        tram.insert_bulk(ctx, counts)
        if remaining:
            ctx.emit(ctx.worker.post_task, driver, remaining - 1)
        else:
            tram.flush_when_done(ctx)

    for w in range(W):
        rt.post(w, driver, ROUNDS)
    rt.run()
    return rt, tram.stats.items_delivered


def _time(flow):
    start = time.perf_counter()
    rt, delivered = _run(flow)
    elapsed = time.perf_counter() - start
    assert delivered == MACHINE.total_workers * (ROUNDS + 1) * ITEMS_PER_ROUND
    # A disabled config must reduce to the None fast path, not merely
    # run with infinite caps.
    assert rt.flow is None
    return elapsed


def test_disabled_flow_is_free():
    # Interleave the two variants and take each one's best-of-N so a
    # transient stall on either side cannot fake (or hide) a regression.
    baseline, disabled = [], []
    _time(None)  # warm imports / allocator before the timed repeats
    for _ in range(REPEATS):
        baseline.append(_time(None))
        disabled.append(_time(FlowConfig(enabled=False)))
    ratio = min(disabled) / min(baseline)
    assert ratio < MAX_RATIO, (
        f"disabled flow control costs {ratio:.3f}x baseline "
        f"(limit {MAX_RATIO}x)"
    )


def test_enabled_flow_actually_gates():
    """Sanity: the same workload under tiny caps parks yet loses nothing."""
    rt, delivered = _run(
        FlowConfig(ct_max_msgs=2, ct_max_bytes=4096,
                   nic_max_msgs=2, nic_max_bytes=4096)
    )
    assert delivered == MACHINE.total_workers * (ROUNDS + 1) * ITEMS_PER_ROUND
    assert rt.flow is not None
    assert rt.flow.stats.messages_parked > 0
    for gate in rt.flow.gates():
        assert gate.hwm_msgs <= gate.max_msgs
        assert not gate.parked
    cons = rt.flow.conservation()
    assert cons["balanced"] is True
    assert cons["shed"] == 0
