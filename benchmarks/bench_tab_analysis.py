"""tabA/tabB — §III-C closed-form analysis vs simulator measurement."""

from conftest import run_once

from repro.harness.figures import tabA, tabB


def test_tabA_memory_overhead(benchmark):
    data = run_once(benchmark, tabA, "quick")
    measured = dict(zip(data.x, data.series_by_name("measured").y))
    analytic = dict(zip(data.x, data.series_by_name("analytic_max").y))
    for scheme in data.x:
        assert measured[scheme] <= analytic[scheme]
    # The §III-C ordering: WW allocates the most, PP the least.
    assert measured["WW"] > measured["WPs"] >= measured["PP"]


def test_tabB_message_bounds(benchmark):
    data = run_once(benchmark, tabB, "quick")
    lower = data.series_by_name("lower_bound").y
    measured = data.series_by_name("measured").y
    upper = data.series_by_name("upper_bound").y
    for lo, m, hi in zip(lower, measured, upper):
        assert lo <= m <= hi
