"""Fig 11 — histogram with few updates/PE: the flush-heavy regime."""

from conftest import run_once

from repro.harness.figures import fig11


def test_fig11_histogram_flush_heavy(benchmark):
    data = run_once(benchmark, fig11, "quick")
    ww = data.series_by_name("WW").y
    wps = data.series_by_name("WPs").y
    pp = data.series_by_name("PP").y
    # WW collapses at the largest node count (one flush message per
    # destination worker).
    assert ww[-1] > 1.3 * wps[-1]
    # PP stays in WPs's neighbourhood (atomics offset its flush gains).
    assert pp[-1] < ww[-1]
