#!/usr/bin/env python
"""Supervisor and journal overhead benchmark.

The self-healing machinery in :mod:`repro.harness.pool` must be close
to free when nothing goes wrong: per-worker dispatch, heartbeat
tracking, wall-clock deadlines, and the fsync'd sweep journal all sit
on the hot path of every point. This suite measures that tax on a
64-point grid of cheap (~few ms) points — where fixed per-point
overhead is most visible — and reports:

* ``serial_plain`` / ``serial_journal`` — points/sec serial, without
  and with the crash-consistent journal (one fsync'd JSONL line per
  point);
* ``journal_tax_ms`` — added wall-clock per point from journaling;
* ``parallel_plain`` / ``parallel_supervised`` — points/sec through
  the worker pool, without and with the full supervision feature set
  (retries, per-point timeouts, quarantine);
* ``supervision_tax_ms`` — added wall-clock per point from
  supervision.

Under ``--gate`` the suite fails if either tax exceeds a fixed
per-point ceiling (absolute milliseconds, not a baseline ratio — the
tax is a constant cost, so a ratio against host-dependent point cost
would be meaningless across machines).

Usage::

    PYTHONPATH=src python benchmarks/bench_supervisor_overhead.py \
        --out BENCH_supervisor.json --gate
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

from repro.harness.sweep import run_sweep

SCHEMA = "repro.bench-supervisor/1"

AXES = {"x": list(range(16))}
SEEDS = (0, 1, 2, 3)  # 16 cells x 4 seeds = 64 points
TAG = "bench:supervisor-overhead"
REPEATS = 3

#: Per-point overhead ceilings (milliseconds), enforced under --gate.
#: Generous enough for a loaded CI runner; an order of magnitude above
#: the measured cost on an idle workstation.
JOURNAL_TAX_CEILING_MS = 25.0
SUPERVISION_TAX_CEILING_MS = 25.0


def _busy_point(seed, *, x):
    """Deterministic ~ms busy-work; cheap enough to expose dispatch tax."""
    acc = 0
    for i in range(50_000):
        acc += (i ^ x ^ seed) & 7
    return float(acc)


def _n_points() -> int:
    return len(AXES["x"]) * len(SEEDS)


def _best_wall(**kwargs) -> float:
    """Min-of-REPEATS wall time for one sweep configuration."""
    best = float("inf")
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        run_sweep(_busy_point, AXES, seeds=SEEDS, tag=TAG, **kwargs)
        best = min(best, time.perf_counter() - t0)
    return best


def run_suite(parallel: int) -> dict:
    n = _n_points()
    results = {}

    def report(name, value, unit, detail):
        results[name] = {"value": round(value, 3), "unit": unit,
                         "detail": detail}
        print(f"  {name:22s} {value:10,.3f} {unit}", file=sys.stderr)

    serial_plain = _best_wall()
    report("serial_plain", n / serial_plain, "points/sec",
           f"{n} cheap points, serial, no journal")

    with tempfile.TemporaryDirectory(prefix="bench-supervisor") as td:
        serial_journal = _best_wall(journal=Path(td) / "journal.jsonl")
    report("serial_journal", n / serial_journal, "points/sec",
           "same grid with the fsync'd sweep journal")
    report("journal_tax_ms",
           max(0.0, serial_journal - serial_plain) / n * 1000, "ms/point",
           "added wall-clock per point from journaling")

    par_plain = _best_wall(parallel=parallel)
    report("parallel_plain", n / par_plain, "points/sec",
           f"worker pool at --parallel {parallel}, no supervision extras")

    par_supervised = _best_wall(parallel=parallel, retries=2,
                                point_timeout_s=60.0)
    report("parallel_supervised", n / par_supervised, "points/sec",
           "same pool with retries=2 and a per-point timeout armed")
    report("supervision_tax_ms",
           max(0.0, par_supervised - par_plain) / n * 1000, "ms/point",
           "added wall-clock per point from supervision")
    return results


def gate(results: dict) -> int:
    failures = []
    for name, ceiling in (
        ("journal_tax_ms", JOURNAL_TAX_CEILING_MS),
        ("supervision_tax_ms", SUPERVISION_TAX_CEILING_MS),
    ):
        got = results[name]["value"]
        if got > ceiling:
            failures.append(
                f"{name}: {got:.3f} ms/point exceeds the "
                f"{ceiling:.0f} ms ceiling"
            )
        else:
            print(f"  {name:22s} {got:.3f} <= {ceiling:.0f} ms/point ok",
                  file=sys.stderr)
    if failures:
        print("supervisor overhead regression detected:", file=sys.stderr)
        for f_ in failures:
            print(f"  - {f_}", file=sys.stderr)
        return 1
    print("OK: supervision and journal taxes within ceilings",
          file=sys.stderr)
    return 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--out", default=None,
                    help="write BENCH_supervisor.json here")
    ap.add_argument("--gate", action="store_true",
                    help="fail if per-point overhead exceeds fixed ceilings")
    ap.add_argument("--parallel", type=int,
                    default=min(4, os.cpu_count() or 1),
                    help="pool width for the parallel benches "
                    "(default min(4, cpus))")
    args = ap.parse_args(argv)

    print(
        f"running supervisor overhead suite ({_n_points()} points, "
        f"--parallel {args.parallel}, {REPEATS} repeats)...",
        file=sys.stderr,
    )
    results = run_suite(args.parallel)
    payload = {
        "schema": SCHEMA,
        "env": {"cpus": os.cpu_count(), "parallel": args.parallel},
        "results": results,
    }
    if args.out:
        with open(args.out, "w") as f:
            json.dump(payload, f, indent=1, sort_keys=True)
            f.write("\n")
        print(f"wrote {args.out}", file=sys.stderr)
    if args.gate:
        return gate(results)
    return 0


if __name__ == "__main__":
    sys.exit(main())
