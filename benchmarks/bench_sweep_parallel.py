#!/usr/bin/env python
"""Sweep-executor benchmark-regression suite.

Measures the :mod:`repro.harness.pool` executor on a skewed 32-point
histogram grid (``nodes=1..8`` next to each other, so static
partitioning would serialize the tail — exactly what the work-stealing
queue is for) and emits ``BENCH_sweep.json``:

* ``sweep_serial`` / ``sweep_parallel`` — points/sec through the
  executor without a cache, serial vs ``--parallel min(8, cpus)``;
* ``parallel_speedup`` — the ratio of the two (x);
* ``warm_speedup`` — cold cached run vs fully-warm re-run (x), with
  the warm run required to execute **zero** simulations and produce a
  canonically identical artifact (checked on every invocation, not
  just under ``--check``).

The committed copy under ``benchmarks/`` is the regression baseline:
CI re-runs the suite and fails when a bench drops below tolerance.
Speedup benches gate on fixed floors instead of the baseline value —
they measure the host's parallelism, so a baseline recorded on a
laptop must not bind a CI runner (and vice versa): ``parallel_speedup``
requires >= 1.5x on hosts with >= 4 cores and >= 3.0x with >= 8 cores,
and is skipped entirely on fewer cores, where forking buys nothing.

Usage::

    PYTHONPATH=src python benchmarks/bench_sweep_parallel.py \
        --out BENCH_sweep.json
    PYTHONPATH=src python benchmarks/bench_sweep_parallel.py \
        --check benchmarks/BENCH_sweep.json --tolerance 0.25
"""

from __future__ import annotations

import argparse
import functools
import json
import os
import sys
import tempfile
import time
from pathlib import Path

from repro.harness.artifact import canonical_metrics_bytes
from repro.harness.pool import run_app_point
from repro.harness.sweep import run_sweep

SCHEMA = "repro.bench-sweep/1"

#: Skewed grid: per-point cost spans ~10x between nodes=1 and nodes=8.
AXES = {"nodes": [1, 2, 4, 8], "scheme": ["WW", "WPs"]}
SEEDS = (0, 1, 2, 3)  # 4 cells/axis combo x 4 seeds = 32 points
FIXED = dict(updates_per_pe=1500, buffer_items=64, batch=500)
TAG = "bench:sweep-parallel:" + json.dumps(FIXED, sort_keys=True)

POINT_FN = functools.partial(
    run_app_point, "histogram", "total_time_ns", **FIXED
)

#: Fixed floors for the speedup benches (see module docstring).
WARM_SPEEDUP_FLOOR = 5.0


def _n_points() -> int:
    cells = 1
    for values in AXES.values():
        cells *= len(values)
    return cells * len(SEEDS)


def parallel_speedup_floor(cpus: int):
    """Required parallel speedup for this host, or None to skip."""
    if cpus >= 8:
        return 3.0
    if cpus >= 4:
        return 1.5
    return None


# ----------------------------------------------------------------------
# Benches
# ----------------------------------------------------------------------
def bench_throughput(parallel: int, metrics_path=None, cache_dir=None,
                     fresh=False):
    """One full sweep of the grid; returns (wall_s, SweepResult)."""
    t0 = time.perf_counter()
    result = run_sweep(
        POINT_FN, AXES, seeds=SEEDS, tag=TAG, parallel=parallel,
        cache_dir=cache_dir, fresh=fresh, metrics_path=metrics_path,
    )
    return time.perf_counter() - t0, result


def run_suite(parallel: int) -> dict:
    n = _n_points()
    results = {}

    def report(name, value, unit, detail):
        results[name] = {"value": round(value, 2), "unit": unit,
                         "detail": detail}
        print(f"  {name:20s} {value:10,.2f} {unit}", file=sys.stderr)

    serial_wall, serial_res = bench_throughput(parallel=1)
    report("sweep_serial", n / serial_wall, "points/sec",
           f"{n}-point skewed histogram grid, serial")

    par_wall, par_res = bench_throughput(parallel=parallel)
    if [c.values for c in par_res.cells] != [
        c.values for c in serial_res.cells
    ]:
        raise SystemExit("FATAL: parallel sweep diverged from serial")
    report("sweep_parallel", n / par_wall, "points/sec",
           f"same grid at --parallel {parallel}")
    report("parallel_speedup", serial_wall / par_wall, "x",
           f"serial {serial_wall:.2f}s / parallel {par_wall:.2f}s "
           f"on {os.cpu_count()} cpus")

    with tempfile.TemporaryDirectory(prefix="bench-sweep-cache") as td:
        cache = Path(td) / "cache"
        cold_art = Path(td) / "cold.json"
        warm_art = Path(td) / "warm.json"
        cold_wall, _ = bench_throughput(
            parallel=parallel, cache_dir=cache, metrics_path=cold_art,
        )
        warm_wall, warm_res = bench_throughput(
            parallel=parallel, cache_dir=cache, metrics_path=warm_art,
        )
        # Functional gates, checked unconditionally: a warm re-run must
        # execute nothing and reproduce the artifact byte-for-byte
        # (modulo provenance).
        if warm_res.total_cache_hits != n:
            raise SystemExit(
                f"FATAL: warm run executed "
                f"{n - warm_res.total_cache_hits} point(s); want 0"
            )
        cold_p = json.loads(cold_art.read_text())
        warm_p = json.loads(warm_art.read_text())
        if canonical_metrics_bytes(cold_p) != canonical_metrics_bytes(warm_p):
            raise SystemExit("FATAL: warm artifact diverged from cold")
    report("warm_speedup", cold_wall / warm_wall, "x",
           f"cold {cold_wall:.2f}s / warm {warm_wall:.2f}s, "
           f"{n}/{n} cache hits, 0 executed")
    return results


# ----------------------------------------------------------------------
# Regression gate
# ----------------------------------------------------------------------
def check_regression(results: dict, baseline_path: str,
                     tolerance: float) -> int:
    with open(baseline_path) as f:
        baseline = json.load(f)
    base = baseline.get("results", {})
    cpus = os.cpu_count() or 1
    failures = []

    def fail(msg):
        failures.append(msg)

    for name in ("sweep_serial", "sweep_parallel"):
        if name not in base:
            continue
        if name not in results:
            fail(f"{name}: missing from current run")
            continue
        floor = base[name]["value"] * (1.0 - tolerance)
        got = results[name]["value"]
        status = "ok" if got >= floor else "REGRESSION"
        print(
            f"  {name:20s} baseline={base[name]['value']:10,.2f} "
            f"now={got:10,.2f} ({got / base[name]['value']:6.1%}) {status}",
            file=sys.stderr,
        )
        if got < floor:
            fail(
                f"{name}: {got:,.2f} points/sec is "
                f"{1 - got / base[name]['value']:.1%} below baseline "
                f"(tolerance {tolerance:.0%})"
            )

    floor = parallel_speedup_floor(cpus)
    got = results.get("parallel_speedup", {}).get("value")
    if floor is None:
        print(
            f"  parallel_speedup     skipped ({cpus} cpu(s): pool cannot "
            "beat serial)",
            file=sys.stderr,
        )
    elif got is None or got < floor:
        fail(f"parallel_speedup: {got}x below the {floor}x floor "
             f"for {cpus} cpus")
    else:
        print(f"  parallel_speedup     {got:.2f}x >= {floor}x floor ok",
              file=sys.stderr)

    got = results.get("warm_speedup", {}).get("value")
    if got is None or got < WARM_SPEEDUP_FLOOR:
        fail(f"warm_speedup: {got}x below the {WARM_SPEEDUP_FLOOR}x floor")
    else:
        print(
            f"  warm_speedup         {got:.2f}x >= "
            f"{WARM_SPEEDUP_FLOOR}x floor ok",
            file=sys.stderr,
        )

    if failures:
        print("sweep bench regression detected:", file=sys.stderr)
        for f_ in failures:
            print(f"  - {f_}", file=sys.stderr)
        return 1
    print("OK: sweep benches within tolerance/floors", file=sys.stderr)
    return 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--out", default=None, help="write BENCH_sweep.json here")
    ap.add_argument("--check", default=None,
                    help="baseline BENCH_sweep.json to compare against")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed fractional throughput drop (default 0.25)")
    ap.add_argument("--parallel", type=int,
                    default=min(8, os.cpu_count() or 1),
                    help="pool width for the parallel benches "
                    "(default min(8, cpus))")
    args = ap.parse_args(argv)

    print(
        f"running sweep bench suite ({_n_points()} points, "
        f"--parallel {args.parallel}, {os.cpu_count()} cpu(s))...",
        file=sys.stderr,
    )
    results = run_suite(args.parallel)
    payload = {
        "schema": SCHEMA,
        "env": {"cpus": os.cpu_count(), "parallel": args.parallel},
        "results": results,
    }
    if args.out:
        with open(args.out, "w") as f:
            json.dump(payload, f, indent=1, sort_keys=True)
            f.write("\n")
        print(f"wrote {args.out}", file=sys.stderr)
    if args.check:
        return check_regression(results, args.check, args.tolerance)
    return 0


if __name__ == "__main__":
    sys.exit(main())
