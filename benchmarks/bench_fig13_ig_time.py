"""Fig 13 — index-gather total time by scheme."""

from conftest import run_once

from repro.harness.figures import fig13


def test_fig13_ig_time(benchmark):
    data = run_once(benchmark, fig13, "quick")
    at_largest = {s.name: s.y[-1] for s in data.series}
    # WPs/WsP are the best overall; WW is the worst at scale.
    best = min(at_largest.values())
    assert at_largest["WPs"] < 1.15 * best
    assert at_largest["WW"] >= max(at_largest["WPs"], at_largest["WsP"])
