"""Fig 8 — histogram: SMP (WPs) vs non-SMP, workers/process sweep."""

from conftest import run_once

from repro.harness.figures import fig8


def test_fig08_histogram_smp_vs_nonsmp(benchmark):
    data = run_once(benchmark, fig8, "quick")
    y = data.series_by_name("time_ms").y
    nonsmp, smp_times = y[0], y[1:]
    # The paper's claim: a workers-per-process setting exists at which
    # SMP WPs is on par with (here: no worse than 1.2x) non-SMP.
    assert min(smp_times) < 1.2 * nonsmp
