"""Figs 16/17 — SSSP large problem: time and wasted updates."""

from conftest import run_once

from repro.harness.figures import fig16, fig17


def test_fig16_sssp_large_time(benchmark):
    data = run_once(benchmark, fig16, "quick")
    at_largest = {s.name: s.y[-1] for s in data.series}
    # WPs performs at least as well as WW on the large input.
    assert at_largest["WPs"] <= at_largest["WW"] * 1.05


def test_fig17_sssp_large_wasted(benchmark):
    data = run_once(benchmark, fig17, "quick")
    at_largest = {s.name: s.y[-1] for s in data.series}
    # Large inputs: no significant wasted-update gap (paper Fig 17) —
    # every scheme within ~30% of WW (vs several-fold gaps on the
    # small problem of Fig 15).
    for name, value in at_largest.items():
        assert 0.70 <= value <= 1.15, (name, value)
