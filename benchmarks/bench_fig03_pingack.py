"""Fig 3 — PingAck: SMP process-count sweep vs non-SMP."""

from conftest import run_once

from repro.harness.figures import fig3


def test_fig03_pingack(benchmark):
    data = run_once(benchmark, fig3, "quick")
    y = data.series_by_name("time_ms").y
    nonsmp, smp = y[0], y[1:]
    # One comm thread for all workers: several times slower than non-SMP.
    assert smp[0] > 1.5 * nonsmp
    # Monotone recovery with more processes per node.
    assert all(a >= b * 0.99 for a, b in zip(smp, smp[1:]))
    # Enough processes reaches parity (within 30%).
    assert smp[-1] < 1.3 * nonsmp
