"""Fig 1 — ping-pong time vs message size (alpha-beta motivation)."""

from conftest import run_once

from repro.harness.figures import fig1


def test_fig01_pingpong(benchmark):
    data = run_once(benchmark, fig1, "quick")
    y = data.series_by_name("one_way_us").y
    # Small messages alpha-dominated (flat, microsecond order)...
    assert abs(y[0] - y[1]) / y[0] < 0.15
    assert 0.5 < y[0] < 20.0
    # ...large messages bandwidth-bound.
    assert y[-1] > 10 * y[0]
