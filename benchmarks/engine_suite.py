#!/usr/bin/env python
"""Engine benchmark-regression suite.

Measures simulator wall-clock throughput (events/sec on the engine hot
path, items/sec through each aggregation scheme at a pinned config) and
emits ``BENCH_engine.json``. The committed copy under ``benchmarks/`` is
the regression baseline: CI re-runs the suite and fails when any bench
drops more than the tolerance below the baseline's ``after`` numbers.

Usage::

    PYTHONPATH=src python benchmarks/engine_suite.py --out BENCH_engine.json
    PYTHONPATH=src python benchmarks/engine_suite.py \
        --out BENCH_engine.json \
        --check benchmarks/BENCH_engine.json --tolerance 0.10

Each bench is run ``--repeats`` times (default 3) and the best run is
reported: for throughput metrics the best run is the least-noisy
estimate of what the code can do, which is what a regression gate wants.

See ``docs/performance.md`` for how to read the output.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.machine import MachineConfig
from repro.runtime.system import RuntimeSystem
from repro.sim.engine import Engine
from repro.tram import TramConfig, make_scheme

SCHEMA = "repro.bench-engine/1"

#: Pinned machine for the per-scheme items/sec benches.
SCHEME_MACHINE = dict(nodes=4, processes_per_node=2, workers_per_process=4)
SCHEME_UPDATES = 1000  # items per driver task
SCHEME_ROUNDS = 5      # driver tasks per worker
SCHEMES = ("WW", "WPs", "WsP", "PP")

#: Pinned flush-heavy config (one point of fig 11's sweep: small z, so
#: buffers rarely fill and timer/flush traffic dominates).
FIG11_POINT = dict(nodes=4, updates_per_pe=600, buffer_items=64, batch=500)


# ----------------------------------------------------------------------
# Benches. Each returns (value, unit, detail).
# ----------------------------------------------------------------------
def bench_event_chain(n: int = 200_000):
    """Self-chaining `after()` events: the core pop/dispatch/push cycle."""
    eng = Engine()
    count = [0]

    def tick(remaining):
        count[0] += 1
        if remaining:
            eng.after(1.0, tick, remaining - 1)

    eng.after(0.0, tick, n)
    t0 = time.perf_counter()
    eng.run()
    wall = time.perf_counter() - t0
    assert count[0] == n + 1
    return count[0] / wall, "events/sec", f"{n} chained events"


def bench_event_chain_internal(n: int = 200_000):
    """Same cycle through the no-handle internal fast path (`call_after`),
    falling back to `after` on engines that predate it."""
    eng = Engine()
    sched = getattr(eng, "call_after", None)
    count = [0]

    if sched is None:
        def tick(remaining):
            count[0] += 1
            if remaining:
                eng.after(1.0, tick, remaining - 1)

        eng.after(0.0, tick, n)
    else:
        def tick(remaining):
            count[0] += 1
            if remaining:
                sched(1.0, tick, (remaining - 1,))

        sched(0.0, tick, (n,))
    t0 = time.perf_counter()
    eng.run()
    wall = time.perf_counter() - t0
    assert count[0] == n + 1
    return count[0] / wall, "events/sec", f"{n} chained events (internal path)"


def bench_timer_churn(steps: int = 2000, burst: int = 50):
    """Flush-timer pattern: arm a burst of timeouts far in the future,
    cancel them shortly after, repeat. Corpses pile up ~1000 steps deep,
    which is the regime lazy-deleting heaps handle worst."""
    eng = Engine()
    arm = getattr(eng, "timer_after", eng.after)
    pending = []
    arms = [0]

    def noop():
        pass

    def driver(remaining):
        for h in pending:
            eng.cancel(h)
        pending.clear()
        for i in range(burst):
            pending.append(arm(1000.0 + i, noop))
        arms[0] += burst
        if remaining:
            eng.after(1.0, driver, remaining - 1)

    eng.after(0.0, driver, steps)
    t0 = time.perf_counter()
    eng.run()
    wall = time.perf_counter() - t0
    return arms[0] / wall, "arms/sec", f"{steps} steps x {burst} arm+cancel"


def bench_flush_heavy_fig11():
    """Engine-level replay of fig 11's WW flush-timer schedule.

    Fig 11 (WW, small z) is the flush-heavy regime: every one of the
    t*p per-destination buffers arms a flush timeout and almost none
    fill, so the event queue carries the full buffer population as
    *parked* timers while ordinary insert/delivery events stream
    through it.  On a lazy-deletion heap each of those ordinary events
    pays O(log n) over the inflated heap; the wheel keeps parked timers
    out of the heap entirely.  This bench replays that schedule at the
    pinned fig 11 point — W^2 parked timers (WW at 4 nodes => 32*32
    buffers), one chain event per histogram update, and a capacity-send
    cancel+re-arm every g items — without the scheme-layer Python that
    dominates an end-to-end run and would mask the engine.
    """
    from repro.harness.figures import scaled_machine

    cfg = FIG11_POINT
    machine = scaled_machine(cfg["nodes"])
    W = machine.total_workers
    n_buffers = W * W
    n_events = cfg["updates_per_pe"] * W * 4  # repeat the point 4x for signal
    g = cfg["buffer_items"]

    eng = Engine()
    arm = getattr(eng, "timer_after", eng.after)
    timers = [arm(1e9 + i, _noop) for i in range(n_buffers)]
    count = [0]

    def tick(remaining):
        count[0] += 1
        if remaining % g == 0:
            # A buffer filled: the capacity send cancels its flush
            # timer and the next insert re-arms it.
            slot = remaining % n_buffers
            eng.cancel(timers[slot])
            timers[slot] = arm(1e9 + slot, _noop)
        if remaining:
            eng.after(1.0, tick, remaining - 1)
        else:
            for h in timers:
                eng.cancel(h)

    eng.after(0.0, tick, n_events)
    t0 = time.perf_counter()
    eng.run()
    wall = time.perf_counter() - t0
    return (
        count[0] / wall,
        "events/sec",
        f"fig11 point {cfg}: {n_buffers} parked WW flush timers, "
        f"{n_events} chain events, cancel+rearm every g={g}",
    )


def _noop():
    pass


def _bench_scheme(name: str):
    machine = MachineConfig(**SCHEME_MACHINE)
    rt = RuntimeSystem(machine, seed=0)
    tram = make_scheme(
        name, rt, TramConfig(buffer_items=64),
        deliver_bulk=lambda ctx, w, n, si, sc: None,
    )
    W = machine.total_workers

    def driver(ctx, remaining):
        rng = rt.rng.stream(f"b/{ctx.worker.wid}")
        counts = np.bincount(rng.integers(0, W, SCHEME_UPDATES), minlength=W)
        tram.insert_bulk(ctx, counts)
        if remaining:
            ctx.emit(ctx.worker.post_task, driver, remaining - 1)
        else:
            tram.flush_when_done(ctx)

    for w in range(W):
        rt.post(w, driver, SCHEME_ROUNDS - 1)
    t0 = time.perf_counter()
    rt.run()
    wall = time.perf_counter() - t0
    expect = W * SCHEME_ROUNDS * SCHEME_UPDATES
    assert tram.stats.items_delivered == expect
    return expect / wall, "items/sec", (
        f"bulk insert, {SCHEME_MACHINE} g=64 z={SCHEME_UPDATES}x{SCHEME_ROUNDS}"
    )


def _scheme_bench(name):
    return lambda: _bench_scheme(name)


BENCHES = {
    "event_chain": bench_event_chain,
    "event_chain_internal": bench_event_chain_internal,
    "timer_churn": bench_timer_churn,
    "flush_heavy_fig11": bench_flush_heavy_fig11,
}
for _s in SCHEMES:
    BENCHES[f"scheme_{_s}"] = _scheme_bench(_s)


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def run_suite(repeats: int) -> dict:
    results = {}
    for name, fn in BENCHES.items():
        best = None
        for _ in range(repeats):
            value, unit, detail = fn()
            if best is None or value > best:
                best = value
        results[name] = {"value": round(best, 1), "unit": unit,
                         "detail": detail}
        print(f"  {name:24s} {best:14,.0f} {unit}", file=sys.stderr)
    return results


def check_regression(results: dict, baseline_path: str, tolerance: float) -> int:
    with open(baseline_path) as f:
        baseline = json.load(f)
    base = baseline.get("results", {})
    failures = []
    for name, entry in base.items():
        if name not in results:
            failures.append(f"{name}: missing from current run")
            continue
        floor = entry["value"] * (1.0 - tolerance)
        got = results[name]["value"]
        status = "ok" if got >= floor else "REGRESSION"
        print(
            f"  {name:24s} baseline={entry['value']:14,.0f} "
            f"now={got:14,.0f} ({got / entry['value']:6.1%}) {status}",
            file=sys.stderr,
        )
        if got < floor:
            failures.append(
                f"{name}: {got:,.0f} {entry['unit']} is "
                f"{1 - got / entry['value']:.1%} below baseline "
                f"{entry['value']:,.0f} (tolerance {tolerance:.0%})"
            )
    if failures:
        print("bench regression detected:", file=sys.stderr)
        for f_ in failures:
            print(f"  - {f_}", file=sys.stderr)
        return 1
    print(f"OK: {len(base)} benches within {tolerance:.0%} of baseline",
          file=sys.stderr)
    return 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--out", default=None, help="write BENCH_engine.json here")
    ap.add_argument("--check", default=None,
                    help="baseline BENCH_engine.json to compare against")
    ap.add_argument("--tolerance", type=float, default=0.10,
                    help="allowed fractional drop vs baseline (default 0.10)")
    ap.add_argument("--repeats", type=int, default=3,
                    help="runs per bench; best is reported (default 3)")
    args = ap.parse_args(argv)

    print("running engine bench suite...", file=sys.stderr)
    results = run_suite(args.repeats)
    payload = {"schema": SCHEMA, "results": results}
    if args.out:
        with open(args.out, "w") as f:
            json.dump(payload, f, indent=1, sort_keys=True)
            f.write("\n")
        print(f"wrote {args.out}", file=sys.stderr)
    if args.check:
        return check_regression(results, args.check, args.tolerance)
    return 0


if __name__ == "__main__":
    sys.exit(main())
