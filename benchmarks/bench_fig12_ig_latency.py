"""Fig 12 — index-gather mean item latency by scheme."""

from conftest import run_once

from repro.harness.figures import fig12


def test_fig12_ig_latency(benchmark):
    data = run_once(benchmark, fig12, "quick")
    at_largest = {s.name: s.y[-1] for s in data.series}
    # The paper's headline latency ordering.
    assert at_largest["PP"] < at_largest["WPs"] < at_largest["WW"]
    assert at_largest["PP"] < at_largest["WsP"] < at_largest["WW"]
