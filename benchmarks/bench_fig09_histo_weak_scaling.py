"""Fig 9 — histogram weak scaling across aggregation schemes."""

from conftest import run_once

from repro.harness.figures import fig9


def test_fig09_histogram_weak_scaling(benchmark):
    data = run_once(benchmark, fig9, "quick")
    ww = data.series_by_name("WW").y
    wps = data.series_by_name("WPs").y
    pp = data.series_by_name("PP").y
    # At the largest node count WPs beats WW (WW is flush-dominated).
    assert wps[-1] <= ww[-1]
    # WW's slowdown from smallest to largest machine exceeds WPs's: it
    # "stops scaling" first.
    assert ww[-1] / ww[0] > wps[-1] / wps[0]
    # PP scales but carries atomics overhead relative to WPs.
    assert pp[-1] >= wps[-1]
