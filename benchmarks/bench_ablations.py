"""Ablation benchmarks for the design knobs DESIGN.md §6 calls out.

Each ablation sweeps one mechanism the paper discusses and asserts the
direction of its effect.
"""

import pytest
from conftest import run_once

from repro.apps import run_histogram, run_indexgather, run_sssp
from repro.apps.graphs import generate_graph
from repro.machine import CostModel, MachineConfig

MACHINE = MachineConfig(nodes=4, processes_per_node=2, workers_per_process=4)


def test_abl_contention_sweep(benchmark):
    """PP's atomics contention coefficient controls its overhead."""

    def sweep():
        out = {}
        for coeff in (0.0, 0.08, 0.5):
            costs = CostModel(contention_coeff=coeff)
            out[coeff] = run_histogram(
                MACHINE, "PP", updates_per_pe=2000, buffer_items=64,
                costs=costs,
            ).total_time_ns
        return out

    times = run_once(benchmark, sweep)
    assert times[0.0] < times[0.08] < times[0.5]


def test_abl_commthread_service_sweep(benchmark):
    """The §III-A bottleneck: comm-thread service cost drives SMP time."""

    def sweep():
        out = {}
        for svc in (150.0, 450.0, 1350.0):
            costs = CostModel(comm_msg_ns=svc)
            out[svc] = run_histogram(
                MACHINE, "WPs", updates_per_pe=2000, buffer_items=64,
                costs=costs,
            ).total_time_ns
        return out

    times = run_once(benchmark, sweep)
    assert times[150.0] < times[450.0] < times[1350.0]


def test_abl_priority_flush_sssp(benchmark):
    """Paper future work: priority flushing must not break SSSP and
    should reduce wasted updates by expediting urgent distances."""
    graph = generate_graph(1024, 8, seed=3)

    def run_pair():
        base = run_sssp(MACHINE, "WPs", graph=graph, buffer_items=32)
        prio = run_sssp(MACHINE, "WPs", graph=graph, buffer_items=32,
                        priority_threshold=15.0)
        return base, prio

    base, prio = run_once(benchmark, run_pair)
    import numpy as np

    assert np.allclose(base.distances, prio.distances, equal_nan=True)
    # Urgent small-distance updates propagate sooner -> fewer stale
    # speculations. (Mean latency over ALL items may rise: priority
    # flushes add small messages; the win is waste, not mean latency.)
    assert prio.wasted_updates < base.wasted_updates


def test_abl_buffer_latency_frontier(benchmark):
    """Buffer size trades overhead for latency (the paper's core
    tension): larger g lowers messages but raises item latency."""

    def sweep():
        out = {}
        for g in (8, 64, 256):
            r = run_indexgather(MACHINE, "WPs", requests_per_pe=2000,
                                buffer_items=g, batch=500)
            out[g] = (r.messages_sent, r.round_trip_latency_ns)
        return out

    frontier = run_once(benchmark, sweep)
    msgs = {g: m for g, (m, _) in frontier.items()}
    lat = {g: l for g, (_, l) in frontier.items()}
    assert msgs[8] > msgs[64] > msgs[256]
    # Latency is U-shaped in g (the paper's own nuance): tiny buffers
    # flood the comm path (queueing), huge buffers sit unfilled.
    assert lat[64] < lat[8]
    assert lat[64] < lat[256]


def test_abl_local_bypass(benchmark):
    """Shared-memory bypass of intra-process items cuts message count."""

    def pair():
        on = run_histogram(MACHINE, "WPs", updates_per_pe=2000,
                           buffer_items=64, bypass_local=True)
        off = run_histogram(MACHINE, "WPs", updates_per_pe=2000,
                            buffer_items=64, bypass_local=False)
        return on, off

    on, off = run_once(benchmark, pair)
    assert on.messages_sent < off.messages_sent


def test_abl_os_noise(benchmark):
    """An unshielded core per process slows fine-grained runs (§III-A)."""

    def pair():
        clean = run_histogram(MACHINE, "WPs", updates_per_pe=2000,
                              buffer_items=64)
        noisy = run_histogram(
            MACHINE, "WPs", updates_per_pe=2000, buffer_items=64,
            costs=CostModel(os_noise_factor=0.5),
        )
        return clean, noisy

    clean, noisy = run_once(benchmark, pair)
    assert noisy.total_time_ns > clean.total_time_ns


def test_abl_multi_nic_pingack(benchmark):
    """More NICs per node relieve injection serialization (the Zambre
    et al. point the paper cites alongside the comm-thread fix)."""
    from repro.apps import run_pingack

    def pair():
        one = run_pingack(
            MachineConfig(nodes=2, processes_per_node=4,
                          workers_per_process=4, nics_per_node=1),
            messages_per_pe=150, payload_bytes=4096,
        )
        four = run_pingack(
            MachineConfig(nodes=2, processes_per_node=4,
                          workers_per_process=4, nics_per_node=4),
            messages_per_pe=150, payload_bytes=4096,
        )
        return one, four

    one, four = run_once(benchmark, pair)
    assert four.total_time_ns <= one.total_time_ns


def test_abl_destination_skew(benchmark):
    """Hotspot destinations (skewed traffic) slow every scheme — the
    hot PE's queue serializes deliveries regardless of aggregation."""

    def pair():
        uniform = {
            s: run_histogram(MACHINE, s, updates_per_pe=2000,
                             buffer_items=64).total_time_ns
            for s in ("WW", "WPs", "PP")
        }
        hot = {
            s: run_histogram(MACHINE, s, updates_per_pe=2000,
                             buffer_items=64, skew=1.2).total_time_ns
            for s in ("WW", "WPs", "PP")
        }
        return uniform, hot

    uniform, hot = run_once(benchmark, pair)
    for scheme in uniform:
        assert hot[scheme] > 1.5 * uniform[scheme]


def test_abl_receiver_policy(benchmark):
    """Pinning all process-addressed receives to one PE (a single
    receiver chare) hot-spots the grouping work; rotation spreads it."""
    from repro.runtime.system import RuntimeSystem
    from repro.tram import TramConfig, make_scheme
    import numpy as np

    def run(policy):
        rt = RuntimeSystem(MACHINE, seed=0)
        for proc in rt.processes:
            proc.receiver_policy = policy
        tram = make_scheme(
            "WPs", rt, TramConfig(buffer_items=32),
            deliver_bulk=lambda ctx, w, n, si, sc: None,
        )
        W = MACHINE.total_workers

        def driver(ctx, remaining):
            rng = rt.rng.stream(f"rp/{ctx.worker.wid}")
            counts = np.bincount(rng.integers(0, W, 500), minlength=W)
            tram.insert_bulk(ctx, counts)
            if remaining:
                ctx.emit(ctx.worker.post_task, driver, remaining - 1)
            else:
                tram.flush_when_done(ctx)

        for w in range(W):
            rt.post(w, driver, 5)
        return rt.run().end_time

    def pair():
        return run("round_robin"), run("fixed")

    rr, fixed = run_once(benchmark, pair)
    assert rr <= fixed
