"""Ablation: 2D topological routing (legacy TRAM) vs flat WPs.

The paper's §I: topology-aware routing schemes "are less beneficial for
modern topologies like fat-trees". On our distance-insensitive fabric
the routed scheme buys fewer source buffers and flush messages but pays
an extra alpha + re-buffering per cross-row item.
"""

from conftest import run_once

from repro.machine import MachineConfig
from repro.runtime.system import RuntimeSystem
from repro.tram import TramConfig, make_scheme

MACHINE = MachineConfig(nodes=8, processes_per_node=2, workers_per_process=2)


def run(scheme, items=400):
    rt = RuntimeSystem(MACHINE, seed=0)
    tram = make_scheme(
        scheme, rt, TramConfig(buffer_items=16, item_bytes=8, idle_flush=True),
        deliver_item=lambda ctx, it: None,
    )
    W = MACHINE.total_workers

    def driver(ctx):
        rng = rt.rng.stream(f"rt/{ctx.worker.wid}")
        for _ in range(items):
            tram.insert(ctx, dst=int(rng.integers(0, W)))

    for w in range(W):
        rt.post(w, driver)
    stats = rt.run(max_events=5_000_000)
    return stats.end_time, tram.stats


def test_abl_2d_routing_vs_flat(benchmark):
    def pair():
        return run("R2D"), run("WPs")

    (t_r2d, s_r2d), (t_wps, s_wps) = run_once(benchmark, pair)
    # Routing wins the buffer-count game...
    assert s_r2d.buffers_allocated < s_wps.buffers_allocated
    # ...but on a flat fabric the extra hop costs latency.
    assert s_r2d.latency.mean > s_wps.latency.mean
    # And items covered are identical.
    assert s_r2d.items_delivered == s_wps.items_delivered
