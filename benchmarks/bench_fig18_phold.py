"""Fig 18 — PHOLD synthetic: rejected (out-of-order) events."""

from conftest import run_once

from repro.harness.figures import fig18


def test_fig18_phold_rejected(benchmark):
    data = run_once(benchmark, fig18, "quick")
    rejected = dict(zip(data.x, data.series_by_name("rejected").y))
    # The paper: >5% fewer rejected events for node-aware PP.
    assert rejected["PP"] < 0.95 * rejected["WW"]
    assert rejected["PP"] < 0.97 * rejected["WPs"]
