"""Fig 18 — PHOLD synthetic: rejected (out-of-order) events.

Besides the paper's qualitative claim, the per-scheme rejected counts
are cross-checked against the committed ``BENCH_pdes.json`` baseline
(the counts are deterministic simulation results, so they must match
exactly on every host); ``bench_pdes_scaling.py --check`` gates the
same numbers in the bench-regression CI job.
"""

import json
from pathlib import Path

from conftest import run_once

from repro.harness.figures import fig18

BASELINE = Path(__file__).parent / "BENCH_pdes.json"


def test_fig18_phold_rejected(benchmark):
    data = run_once(benchmark, fig18, "quick")
    rejected = dict(zip(data.x, data.series_by_name("rejected").y))
    # The paper: >5% fewer rejected events for node-aware PP.
    assert rejected["PP"] < 0.95 * rejected["WW"]
    assert rejected["PP"] < 0.97 * rejected["WPs"]
    # Regression gate: the committed baseline pins the exact counts.
    baseline = json.loads(BASELINE.read_text())["results"]
    for scheme, count in rejected.items():
        want = baseline[f"fig18_rejected_{scheme}"]["value"]
        assert count == want, (
            f"fig18 rejected[{scheme}] = {count} deviates from the "
            f"committed BENCH_pdes.json baseline {want}"
        )
