#!/usr/bin/env python
"""Compare all four aggregation schemes on overhead AND latency.

Runs the two Bale-suite benchmarks the paper uses to isolate the
metrics — histogram (pure overhead) and index-gather (latency) — across
WW / WPs / WsP / PP on the same simulated machine, and prints a
side-by-side table. This is a miniature of the paper's Figs 9 and 12.

Run:  python examples/scheme_comparison.py
"""

from repro.apps import run_histogram, run_indexgather
from repro.machine import MachineConfig
from repro.tram import SCHEME_NAMES
from repro.util.tables import render_table


def main() -> None:
    machine = MachineConfig(nodes=4, processes_per_node=2, workers_per_process=4)
    print(f"machine: {machine.describe()}\n")

    rows = []
    for scheme in SCHEME_NAMES:
        histo = run_histogram(
            machine, scheme, updates_per_pe=4000, buffer_items=64, batch=1000
        )
        ig = run_indexgather(
            machine, scheme, requests_per_pe=3000, buffer_items=64, batch=500
        )
        rows.append(
            [
                scheme,
                histo.total_time_ns / 1e6,
                histo.messages_sent,
                histo.messages_flush,
                ig.total_time_ns / 1e6,
                ig.round_trip_latency_ns / 1e3,
            ]
        )

    print(
        render_table(
            [
                "scheme",
                "histo ms",
                "histo msgs",
                "flush msgs",
                "IG ms",
                "IG latency us",
            ],
            rows,
        )
    )
    print(
        "\nReading the table like the paper does:\n"
        "  * WW sends the most flush messages (one per destination\n"
        "    WORKER) and has the worst index-gather latency;\n"
        "  * WPs/WsP buffer per destination PROCESS: fewest overhead\n"
        "    problems, good latency;\n"
        "  * PP shares one buffer per process pair: best latency\n"
        "    (buffers fill t times faster) but pays atomics on insert."
    )


if __name__ == "__main__":
    main()
