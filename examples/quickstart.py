#!/usr/bin/env python
"""Quickstart: aggregate fine-grained messages with TramLib.

Builds a small simulated SMP cluster (2 nodes x 2 processes x 4 worker
PEs), attaches a WPs aggregation scheme, streams items from every
worker to random destinations, and prints what aggregation bought:
message counts, bytes, and item latency — all in *simulated* time.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import MachineConfig, RuntimeSystem, fmt_time
from repro.tram import TramConfig, make_scheme


def main() -> None:
    machine = MachineConfig(nodes=2, processes_per_node=2, workers_per_process=4)
    print(f"machine: {machine.describe()}")

    rt = RuntimeSystem(machine, seed=42)
    received = np.zeros(machine.total_workers, dtype=np.int64)

    def deliver(ctx, item):
        """Runs on the destination PE for every delivered item."""
        received[ctx.worker.wid] += 1

    tram = make_scheme(
        "WPs",
        rt,
        TramConfig(buffer_items=32, item_bytes=8),
        deliver_item=deliver,
    )

    items_per_worker = 500

    def driver(ctx):
        """Each worker streams items, then flushes its buffers."""
        rng = rt.rng.stream(f"quickstart/{ctx.worker.wid}")
        for _ in range(items_per_worker):
            dst = int(rng.integers(0, machine.total_workers))
            tram.insert(ctx, dst=dst, payload="hello")
        tram.flush(ctx)

    for wid in range(machine.total_workers):
        rt.post(wid, driver)

    stats = rt.run()

    s = tram.stats
    total_items = items_per_worker * machine.total_workers
    print(f"\nsimulated time    : {fmt_time(stats.end_time)}")
    print(f"items inserted    : {s.items_inserted} (all {total_items} delivered: "
          f"{received.sum() == total_items})")
    print(f"aggregated into   : {s.messages_sent} messages "
          f"({s.messages_full} full, {s.messages_flush} flush)")
    print(f"bytes on the wire : {s.bytes_sent}")
    print(f"mean item latency : {fmt_time(s.latency.mean)}")
    print(f"local bypass      : {s.items_bypassed_local} items never left "
          f"their process")
    ratio = s.items_inserted / max(1, s.messages_sent)
    print(f"\n=> {ratio:.0f} items per network message instead of 1 — that is "
          f"the alpha-cost reduction the paper is about.")


if __name__ == "__main__":
    main()
