#!/usr/bin/env python
"""PDES: aggregation latency as a driver of optimistic rollbacks.

Optimistic parallel discrete-event simulation executes events
speculatively; an event arriving behind its logical process's clock
forces a rollback. The paper's synthetic PHOLD (Fig 18) uses a
placeholder engine that merely *counts* such out-of-order arrivals —
so the number of "rejected" events is a pure function of message
latency, which is exactly what the aggregation scheme controls.

This example sweeps schemes and buffer sizes and shows both effects:
PP's shared buffers cut rejects, and bigger buffers (more latency)
raise them.

Run:  python examples/pdes_rollbacks.py
"""

from repro.apps import run_phold
from repro.machine import MachineConfig
from repro.tram import SCHEME_NAMES
from repro.util.tables import render_table


def main() -> None:
    machine = MachineConfig(nodes=2, processes_per_node=1, workers_per_process=8)
    print(f"machine: {machine.describe()} (PHOLD favours many workers per "
          f"process, like the paper's ppn=32 runs)\n")

    print("--- schemes at g=32 ---")
    rows = []
    baseline = None
    for scheme in SCHEME_NAMES:
        r = run_phold(machine, scheme, lps_per_worker=8,
                      quota_per_worker=1200, buffer_items=32)
        if baseline is None:
            baseline = r.events_rejected
        rows.append([
            scheme,
            r.events_executed,
            r.events_rejected,
            f"{r.rejected_fraction:.1%}",
            f"{(baseline - r.events_rejected) / baseline:+.1%}",
            r.mean_latency_ns / 1e3,
        ])
    print(render_table(
        ["scheme", "executed", "rejected", "rej %", "vs WW", "latency us"],
        rows,
    ))

    print("\n--- WPs: buffer size vs rejects (latency knob) ---")
    rows = []
    for g in (4, 16, 64, 256):
        r = run_phold(machine, "WPs", lps_per_worker=8,
                      quota_per_worker=1200, buffer_items=g)
        rows.append([g, r.events_rejected, r.mean_latency_ns / 1e3])
    print(render_table(["g", "rejected", "latency us"], rows))
    print(
        "\nTakeaways:\n"
        "  * PP rejects clearly fewer events than the worker-buffered\n"
        "    schemes (the paper's >5% Fig 18 result);\n"
        "  * buffer depth is U-shaped: tiny buffers flood the comm path,\n"
        "    huge ones never fill (idle flush takes over and the curve\n"
        "    plateaus). For rollback-dominated PDES, aggregation is a\n"
        "    latency knob first and an overhead knob second."
    )


if __name__ == "__main__":
    main()
