#!/usr/bin/env python
"""SSSP: how aggregation latency turns into wasted speculative work.

The paper's SSSP speculates with whatever distances it has; updates
that arrive late are often already stale and get discarded as *wasted
updates* (Figs 14-17). This example runs speculative SSSP on an R-MAT
graph under every scheme, verifies all schemes converge to the exact
same distances, and shows how the latency ordering (PP < WPs < WW)
translates into the wasted-update ordering — plus what the paper's
future-work *priority flushing* buys on top.

Run:  python examples/sssp_wasted_updates.py
"""

import numpy as np

from repro.apps import run_sssp
from repro.apps.graphs import generate_graph
from repro.machine import MachineConfig
from repro.tram import SCHEME_NAMES
from repro.util.tables import render_table


def main() -> None:
    machine = MachineConfig(nodes=4, processes_per_node=2, workers_per_process=4)
    graph = generate_graph(2048, 8, seed=3, kind="rmat")
    print(f"machine: {machine.describe()}")
    print(f"graph:   {graph.num_vertices} vertices, {graph.num_edges} edges (R-MAT)\n")

    results = {}
    rows = []
    for scheme in SCHEME_NAMES:
        r = run_sssp(machine, scheme, graph=graph, buffer_items=32)
        results[scheme] = r
        rows.append(
            [
                scheme,
                r.total_time_ns / 1e6,
                r.wasted_updates,
                f"{r.wasted_fraction:.1%}",
                r.mean_latency_ns / 1e3,
            ]
        )

    # Correctness first: speculative execution must still be exact.
    base = results["WW"].distances
    for scheme, r in results.items():
        assert np.allclose(r.distances, base, equal_nan=True), scheme
    print("all schemes computed identical shortest-path distances\n")

    print(render_table(
        ["scheme", "time ms", "wasted", "wasted %", "item latency us"], rows
    ))

    # The paper's future-work feature: flush buffers immediately for
    # urgent (small-distance) updates. Its value is workload-dependent:
    # on uniform graphs urgent distances are rare and expediting them
    # pays; on hub-heavy R-MAT graphs the extra small messages can
    # congest the comm path instead — measure before enabling.
    uniform = generate_graph(1024, 8, seed=3, kind="uniform")
    plain = run_sssp(machine, "WPs", graph=uniform, buffer_items=32)
    prio = run_sssp(machine, "WPs", graph=uniform, buffer_items=32,
                    priority_threshold=15.0)
    print(
        f"\npriority flushing (WPs, uniform graph, threshold=15): "
        f"wasted {plain.wasted_updates} -> {prio.wasted_updates} "
        f"({1 - prio.wasted_updates / plain.wasted_updates:+.1%} change)"
    )


if __name__ == "__main__":
    main()
