#!/usr/bin/env python
"""Build your own aggregation policy on top of the library.

The paper's future work asks for "prioritization of items, which should
help latency or cost sensitive applications". TramLib already ships a
priority-*flush* knob; this example goes further and composes a custom
**hybrid policy** from two stock scheme instances, entirely through the
public API:

  * urgent items (priority <= threshold) go through a `Direct` instance
    — one message each, minimum latency, full alpha cost;
  * everything else is aggregated through a `WPs` instance.

The hybrid is compared against pure WPs and pure Direct on a mixed
workload: the urgent 5% of items get near-Direct latency while the
bulk 95% keeps near-WPs overhead.

Run:  python examples/custom_hybrid_scheme.py
"""

from repro import MachineConfig, RuntimeSystem
from repro.tram import TramConfig, make_scheme
from repro.util.tables import render_table

MACHINE = MachineConfig(nodes=4, processes_per_node=2, workers_per_process=4)
ITEMS_PER_WORKER = 150
URGENT_EVERY = 20  # 5% of items are urgent
PACE_NS = 2_000.0  # compute between items: sparse traffic, slow fills


class HybridAggregator:
    """Urgent items Direct, the rest WPs — composition, no subclassing."""

    def __init__(self, rt, threshold: float, deliver_item) -> None:
        self.threshold = threshold
        self.fast = make_scheme("Direct", rt, TramConfig(item_bytes=8),
                                deliver_item=deliver_item)
        self.bulk = make_scheme(
            "WPs", rt, TramConfig(buffer_items=64, item_bytes=8),
            deliver_item=deliver_item,
        )

    def insert(self, ctx, dst, payload=None, priority=None):
        if priority is not None and priority <= self.threshold:
            self.fast.insert(ctx, dst, payload, priority)
        else:
            self.bulk.insert(ctx, dst, payload, priority)

    def flush(self, ctx):
        self.bulk.flush(ctx)

    @property
    def messages_sent(self):
        return self.fast.stats.messages_sent + self.bulk.stats.messages_sent


def run(policy_name: str):
    rt = RuntimeSystem(MACHINE, seed=7)
    urgent_lat = []
    normal_lat = []

    def deliver(ctx, item):
        # item.payload carries (created, urgent) for latency bookkeeping.
        created, urgent = item.payload
        (urgent_lat if urgent else normal_lat).append(ctx.now - created)

    if policy_name == "hybrid":
        agg = HybridAggregator(rt, threshold=0.0, deliver_item=deliver)
    else:
        tram = make_scheme(
            policy_name, rt,
            TramConfig(buffer_items=64, item_bytes=8),
            deliver_item=deliver,
        )

        class _Plain:
            def insert(self, ctx, dst, payload=None, priority=None):
                tram.insert(ctx, dst, payload, priority)

            def flush(self, ctx):
                tram.flush(ctx)

            messages_sent = property(lambda self: tram.stats.messages_sent)

        agg = _Plain()

    def driver(ctx, i):
        # One item per task with PACE_NS of compute in between: the
        # sparse-traffic regime where buffers fill slowly and buffering
        # latency (not congestion) dominates.
        ctx.charge(PACE_NS)
        urgent = i % URGENT_EVERY == 0
        rng = rt.rng.stream(f"hybrid/{ctx.worker.wid}")
        dst = int(rng.integers(0, MACHINE.total_workers))
        agg.insert(ctx, dst, payload=(ctx.now, urgent),
                   priority=0.0 if urgent else 1.0)
        if i + 1 < ITEMS_PER_WORKER:
            ctx.emit(ctx.worker.post_task, driver, i + 1)
        else:
            agg.flush(ctx)

    for w in range(MACHINE.total_workers):
        rt.post(w, driver, 0)
    rt.run()

    mean = lambda xs: sum(xs) / len(xs) if xs else 0.0  # noqa: E731
    return mean(urgent_lat), mean(normal_lat), agg.messages_sent, rt.now


def main() -> None:
    print(f"machine: {MACHINE.describe()}")
    print(f"workload: {ITEMS_PER_WORKER} items/worker, 1 in {URGENT_EVERY} urgent\n")
    rows = []
    for name in ("WPs", "Direct", "hybrid"):
        u, n, msgs, t = run(name)
        rows.append([name, u / 1e3, n / 1e3, msgs, t / 1e6])
    print(render_table(
        ["policy", "urgent lat us", "normal lat us", "messages", "time ms"],
        rows,
    ))
    print(
        "\nIn sparse traffic, aggregated items wait a long time for their\n"
        "buffer to fill; the hybrid gives the urgent 5% Direct-class\n"
        "latency while the other 95% keep aggregation-class message\n"
        "counts — the policy the paper's future-work section sketches,\n"
        "built from two stock scheme instances sharing one runtime.\n"
        "(In saturating streams, plain WPs already has low latency — the\n"
        "hybrid is a tool for the sparse/latency-critical regime.)"
    )


if __name__ == "__main__":
    main()
