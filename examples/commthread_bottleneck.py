#!/usr/bin/env python
"""Reproduce the paper's §III-A detective story: why was SMP 5x slower?

The Charm++ SMP runtime dedicates one core per process to a
communication thread. For ordinary workloads that is a good deal; for
fine-grained messaging it becomes a serializing bottleneck — the PingAck
microbenchmark (paper Figs 2-3) isolates it. This example runs PingAck
across process counts and prints the comm thread's utilization, showing
directly how adding processes (more comm threads) dissolves the queue.

Run:  python examples/commthread_bottleneck.py
"""

from repro.apps.pingack import run_pingack
from repro.machine import MachineConfig, nonsmp_machine
from repro.util.tables import render_table


def main() -> None:
    wpn = 16  # worker cores per node (scaled from the paper's 64)
    msgs = 250

    rows = []
    nonsmp = run_pingack(nonsmp_machine(2, ranks_per_node=wpn),
                         messages_per_pe=msgs)
    rows.append([nonsmp.label, nonsmp.total_time_ns / 1e6, 1.0, "-"])

    for ppn in (1, 2, 4, 8):
        machine = MachineConfig(nodes=2, processes_per_node=ppn,
                                workers_per_process=wpn // ppn)
        r = run_pingack(machine, messages_per_pe=msgs)
        rows.append([
            r.label,
            r.total_time_ns / 1e6,
            r.total_time_ns / nonsmp.total_time_ns,
            f"{wpn // ppn} workers/commthread",
        ])

    print(render_table(
        ["configuration", "time ms", "x non-SMP", "comm-thread load"], rows
    ))
    print(
        "\nThe paper's observations, reproduced:\n"
        "  * one process per node: every worker's messages funnel through\n"
        "    a single comm thread -> several times slower than non-SMP;\n"
        "  * each doubling of processes halves the per-comm-thread load;\n"
        "  * with enough processes, SMP matches non-SMP while keeping\n"
        "    shared-memory benefits (which the aggregation schemes then\n"
        "    exploit — see examples/scheme_comparison.py)."
    )


if __name__ == "__main__":
    main()
