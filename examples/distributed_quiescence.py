#!/usr/bin/env python
"""Detect termination the way a real Charm++ program must.

Our benchmark harness "cheats": the simulator knows globally when the
event queue drains. A real distributed program doesn't — it runs a
quiescence-detection protocol. This example attaches the two-wave
detector (`repro.runtime.qd_protocol`) to a streaming aggregation app
and reports what detection *costs*: how long after true quiescence the
declaration lands, and how many protocol messages it took.

Run:  python examples/distributed_quiescence.py
"""

import numpy as np

from repro import MachineConfig, RuntimeSystem, fmt_time
from repro.runtime.qd_protocol import QuiescenceDetector
from repro.tram import TramConfig, make_scheme


def main() -> None:
    machine = MachineConfig(nodes=2, processes_per_node=2, workers_per_process=4)
    rt = RuntimeSystem(machine, seed=11)
    print(f"machine: {machine.describe()}\n")

    declared = []
    qd = QuiescenceDetector(rt, on_quiescence=declared.append,
                            poll_interval_ns=25_000.0)
    last_delivery = {"t": 0.0}

    def deliver(ctx, item):
        qd.note_consumed(ctx)
        last_delivery["t"] = max(last_delivery["t"], ctx.now)

    tram = make_scheme(
        "WPs", rt, TramConfig(buffer_items=32, idle_flush=True),
        deliver_item=deliver,
    )

    items_per_worker = 300

    def driver(ctx, remaining):
        rng = rt.rng.stream(f"qd-demo/{ctx.worker.wid}")
        ctx.charge(500.0)  # some compute between sends
        qd.note_produced(ctx)
        tram.insert(ctx, dst=int(rng.integers(0, machine.total_workers)))
        if remaining > 1:
            ctx.emit(ctx.worker.post_task, driver, remaining - 1)

    for wid in range(machine.total_workers):
        rt.post(wid, driver, items_per_worker)
    qd.start()
    rt.run()

    assert declared, "detector never fired"
    lag = declared[0] - last_delivery["t"]
    print(f"last application delivery : {fmt_time(last_delivery['t'])}")
    print(f"quiescence declared at    : {fmt_time(declared[0])}")
    print(f"detection lag             : {fmt_time(lag)}")
    print(f"detection waves           : {qd.waves_run}")
    print(f"protocol messages         : {qd.messages_sent}")
    print(
        "\nThe two-wave rule means the declaration always trails true\n"
        "quiescence by one to two poll intervals plus a network round\n"
        "trip — the price a distributed program pays for certainty that\n"
        "no message is still in flight."
    )


if __name__ == "__main__":
    main()
