#!/usr/bin/env python
"""Chaos drill for the supervised sweep pool (CI gate).

Runs the same app-backed histogram sweep twice:

1. **chaotic** — 3 workers, with three injected failure modes: one
   point SIGKILLs its worker mid-execution (once), one point hangs far
   past the per-point timeout (once), and ~10% of points fail
   transiently on their first attempt;
2. **clean** — serial, fault-free reference.

and asserts the self-healing invariants from the supervisor design:

* the chaotic sweep *completes* (no fault is fatal);
* its point accounting reconciles:
  ``n_points == cache_hits + executed + poisoned`` with **zero**
  poisoned points (every injected fault is recoverable within the
  retry budget);
* the supervisor actually worked (``restarts >= 2``: the SIGKILL and
  the hang-kill; ``retries >= 3``: one charged attempt per fault);
* the chaotic artifact is **canonically byte-identical** to the clean
  serial artifact.

Faults are keyed off marker files in a scratch directory named by
``$REPRO_CHAOS_DIR`` — never off point params — so both runs compute
the exact same grid and the byte comparison is meaningful.

Usage::

    PYTHONPATH=src python scripts/chaos_sweep.py
"""

from __future__ import annotations

import json
import os
import signal
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.harness.artifact import (  # noqa: E402
    canonical_metrics_bytes,
    validate_metrics_payload,
)
from repro.harness.pool import run_app_point  # noqa: E402
from repro.harness.sweep import run_sweep  # noqa: E402

CHAOS_DIR_ENV = "REPRO_CHAOS_DIR"

AXES = {"nodes": [1, 2], "scheme": ["WW", "WPs"]}
SEEDS = (0, 1)  # 4 cells x 2 seeds = 8 points
FIXED = dict(updates_per_pe=1500, buffer_items=64, batch=500)
TAG = "ci:chaos-sweep:" + json.dumps(FIXED, sort_keys=True)


def _marker_once(name: str) -> bool:
    """True exactly once per marker name (False with chaos disabled)."""
    chaos_dir = os.environ.get(CHAOS_DIR_ENV)
    if not chaos_dir:
        return False
    marker = Path(chaos_dir) / name
    if marker.exists():
        return False
    marker.touch()
    return True


def chaos_point(seed: int, *, nodes: int, scheme: str) -> float:
    """One histogram point with marker-gated fault injection."""
    if nodes == 2 and scheme == "WW" and _marker_once("kamikaze"):
        os.kill(os.getpid(), signal.SIGKILL)
    if nodes == 1 and scheme == "WPs" and seed == 1 and _marker_once("hang"):
        time.sleep(300)
    if nodes == 1 and scheme == "WW" and seed == 0 and _marker_once("flaky"):
        raise ValueError("injected transient failure")
    return run_app_point(
        "histogram", "total_time_ns", seed=seed, nodes=nodes, scheme=scheme,
        **FIXED,
    )


def main() -> int:
    workdir = Path(tempfile.mkdtemp(prefix="chaos-sweep-"))
    chaos_dir = workdir / "faults"
    chaos_dir.mkdir()
    chaos_path = workdir / "chaos.json"
    clean_path = workdir / "clean.json"
    n = 8

    print("chaotic run: 3 workers, SIGKILL + hang + transient faults...",
          file=sys.stderr)
    os.environ[CHAOS_DIR_ENV] = str(chaos_dir)
    t0 = time.perf_counter()
    chaotic = run_sweep(
        chaos_point, AXES, seeds=SEEDS, tag=TAG, metrics_path=chaos_path,
        parallel=3, retries=3, point_timeout_s=10.0,
    )
    chaotic_wall = time.perf_counter() - t0
    fired = sorted(p.name for p in chaos_dir.iterdir())
    if fired != ["flaky", "hang", "kamikaze"]:
        raise SystemExit(f"FATAL: not every fault fired: {fired}")

    print("clean run: serial, fault-free reference...", file=sys.stderr)
    del os.environ[CHAOS_DIR_ENV]
    clean = run_sweep(
        chaos_point, AXES, seeds=SEEDS, tag=TAG, metrics_path=clean_path,
    )

    if [c.values for c in chaotic.cells] != [c.values for c in clean.cells]:
        raise SystemExit("FATAL: chaotic sweep values diverged from clean")

    a = json.loads(chaos_path.read_text())
    b = json.loads(clean_path.read_text())
    problems = validate_metrics_payload(a)
    if problems:
        raise SystemExit(f"FATAL: chaotic artifact invalid: {problems}")
    if canonical_metrics_bytes(a) != canonical_metrics_bytes(b):
        raise SystemExit(
            "FATAL: chaotic artifact not canonically byte-identical "
            "to the clean serial artifact"
        )

    s = a["provenance"]["summary"]
    if s["n_points"] != n:
        raise SystemExit(f"FATAL: expected {n} points, got {s['n_points']}")
    if s["cache_hits"] + s["executed"] + s["poisoned"] != s["n_points"]:
        raise SystemExit(f"FATAL: point accounting does not reconcile: {s}")
    if s["poisoned"] != 0:
        raise SystemExit(f"FATAL: recoverable faults left poison: {s}")
    if s["restarts"] < 2:
        raise SystemExit(f"FATAL: expected >= 2 worker restarts: {s}")
    if s["retries"] < 3:
        raise SystemExit(f"FATAL: expected >= 3 charged retries: {s}")

    print(
        f"OK: chaotic sweep healed in {chaotic_wall:.1f}s — "
        f"{s['executed']} executed, {s['retries']} retry(ies), "
        f"{s['restarts']} restart(s), 0 poisoned; canonical bytes "
        "identical to clean serial",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
